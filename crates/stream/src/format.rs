//! The framed container layout: header, per-block records, index footer,
//! trailer.
//!
//! ```text
//! ┌──────────────────────────────────────────────────────────────────┐
//! │ header (16 B): "PDZS" · version u8 · 3 reserved 0 · block u64 LE │
//! ├──────────────────────────────────────────────────────────────────┤
//! │ block record 0: method u8 · raw u32 · comp u32 · crc32 u32       │
//! │                 payload (comp bytes, block-local LZ1 or stored)  │
//! │ block record 1: …                                                │
//! ├──────────────────────────────────────────────────────────────────┤
//! │ end-of-blocks marker: 0xFF (1 B)                                 │
//! ├──────────────────────────────────────────────────────────────────┤
//! │ footer: per block — offset u64 · raw u32 · comp u32 · crc u32    │
//! │         · method u8 · 3 pad 0 (24 B each)                        │
//! ├──────────────────────────────────────────────────────────────────┤
//! │ trailer (24 B): footer-offset u64 · blocks u64 · footer-crc u32  │
//! │                 · "SZDP"                                         │
//! └──────────────────────────────────────────────────────────────────┘
//! ```
//!
//! Every block holds exactly `block_size` raw bytes except the last, so a
//! byte offset maps to its block in O(1) (`offset / block_size`) — the
//! property that makes `read_range` decode only covering blocks. All
//! integers are little-endian; compressed payloads are block-local (copy
//! sources are offsets *within the block*), so any block decodes alone.

use crate::error::StreamError;

/// Leading container magic (`"PDZS"` — ParDict Zipped Stream).
pub const MAGIC: [u8; 4] = *b"PDZS";
/// Trailing trailer magic (the header magic reversed, so a container is
/// recognizable from either end).
pub const TRAILER_MAGIC: [u8; 4] = *b"SZDP";
/// Format version this build reads and writes.
pub const VERSION: u8 = 1;
/// Fixed header length in bytes.
pub const HEADER_LEN: usize = 16;
/// Inline per-block record header length in bytes.
pub const RECORD_HEADER_LEN: usize = 13;
/// Per-block index footer entry length in bytes.
pub const FOOTER_ENTRY_LEN: usize = 24;
/// Fixed trailer length in bytes.
pub const TRAILER_LEN: usize = 24;
/// Method byte marking the end of the block section (never a valid
/// method, so a streaming reader needs no lookahead).
pub const END_OF_BLOCKS: u8 = 0xFF;
/// Block payload is a block-local LZ1 token stream.
pub const METHOD_LZ1: u8 = 0;
/// Block payload is the raw bytes verbatim (incompressible data, or data
/// containing the NUL sentinel the suffix tree reserves).
pub const METHOD_STORED: u8 = 1;
/// Default raw block size (64 KiB): large enough that block-local LZ1
/// stays within a few percent of whole-buffer LZ1 on typical corpora,
/// small enough that a wave of in-flight blocks is cache-friendly.
pub const DEFAULT_BLOCK_SIZE: usize = 64 * 1024;
/// Upper bound on the configurable block size (raw lengths are `u32`).
pub const MAX_BLOCK_SIZE: usize = 1 << 30;

pub(crate) fn put_u32(out: &mut Vec<u8>, x: u32) {
    out.extend_from_slice(&x.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, x: u64) {
    out.extend_from_slice(&x.to_le_bytes());
}

pub(crate) fn get_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes(b[..4].try_into().expect("u32 slice"))
}

pub(crate) fn get_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes(b[..8].try_into().expect("u64 slice"))
}

/// Encode the fixed 16-byte header.
#[must_use]
pub fn encode_header(block_size: u64) -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[..4].copy_from_slice(&MAGIC);
    h[4] = VERSION;
    h[8..16].copy_from_slice(&block_size.to_le_bytes());
    h
}

/// Parse and validate the fixed header; returns the block size.
///
/// # Errors
/// [`StreamError::NotAContainer`] when the magic is absent,
/// [`StreamError::UnsupportedVersion`] / [`StreamError::CorruptHeader`]
/// when the rest fails validation.
pub fn parse_header(h: &[u8]) -> Result<u64, StreamError> {
    if h.len() < 4 || h[..4] != MAGIC {
        return Err(StreamError::NotAContainer);
    }
    if h.len() < HEADER_LEN {
        return Err(StreamError::Truncated);
    }
    if h[4] != VERSION {
        return Err(StreamError::UnsupportedVersion(h[4]));
    }
    if h[5..8] != [0, 0, 0] {
        return Err(StreamError::CorruptHeader("reserved bytes set"));
    }
    let block_size = get_u64(&h[8..16]);
    if block_size == 0 || block_size > MAX_BLOCK_SIZE as u64 {
        return Err(StreamError::CorruptHeader("block size out of range"));
    }
    Ok(block_size)
}

/// The inline header preceding every block payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordHeader {
    /// [`METHOD_LZ1`] or [`METHOD_STORED`].
    pub method: u8,
    /// Raw (uncompressed) length of the block.
    pub raw_len: u32,
    /// Payload length in the container.
    pub comp_len: u32,
    /// CRC-32 of the payload bytes.
    pub crc: u32,
}

/// Encode an inline block record header.
#[must_use]
pub fn encode_record_header(h: &RecordHeader) -> [u8; RECORD_HEADER_LEN] {
    let mut out = [0u8; RECORD_HEADER_LEN];
    out[0] = h.method;
    out[1..5].copy_from_slice(&h.raw_len.to_le_bytes());
    out[5..9].copy_from_slice(&h.comp_len.to_le_bytes());
    out[9..13].copy_from_slice(&h.crc.to_le_bytes());
    out
}

/// Parse the 12 bytes following an already-read method byte.
#[must_use]
pub fn parse_record_tail(method: u8, tail: &[u8; RECORD_HEADER_LEN - 1]) -> RecordHeader {
    RecordHeader {
        method,
        raw_len: get_u32(&tail[0..4]),
        comp_len: get_u32(&tail[4..8]),
        crc: get_u32(&tail[8..12]),
    }
}

/// One block's entry in the index footer: the inline record header plus
/// the file offset of that record, enabling O(1) seek-to-block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockEntry {
    /// File offset of the block's inline record header.
    pub offset: u64,
    /// Raw (uncompressed) length of the block.
    pub raw_len: u32,
    /// Payload length in the container.
    pub comp_len: u32,
    /// CRC-32 of the payload bytes.
    pub crc: u32,
    /// [`METHOD_LZ1`] or [`METHOD_STORED`].
    pub method: u8,
}

impl BlockEntry {
    /// The inline record header this entry mirrors.
    #[must_use]
    pub fn record_header(&self) -> RecordHeader {
        RecordHeader {
            method: self.method,
            raw_len: self.raw_len,
            comp_len: self.comp_len,
            crc: self.crc,
        }
    }
}

/// Serialize the index footer (one [`FOOTER_ENTRY_LEN`]-byte entry per
/// block).
#[must_use]
pub fn encode_footer(entries: &[BlockEntry]) -> Vec<u8> {
    let mut out = Vec::with_capacity(entries.len() * FOOTER_ENTRY_LEN);
    for e in entries {
        put_u64(&mut out, e.offset);
        put_u32(&mut out, e.raw_len);
        put_u32(&mut out, e.comp_len);
        put_u32(&mut out, e.crc);
        out.push(e.method);
        out.extend_from_slice(&[0, 0, 0]);
    }
    out
}

/// Parse the index footer back into entries.
///
/// # Errors
/// [`StreamError::CorruptFooter`] when the byte length is not a whole
/// number of entries or padding bytes are set.
pub fn parse_footer(bytes: &[u8]) -> Result<Vec<BlockEntry>, StreamError> {
    if !bytes.len().is_multiple_of(FOOTER_ENTRY_LEN) {
        return Err(StreamError::CorruptFooter("ragged entry section"));
    }
    let mut entries = Vec::with_capacity(bytes.len() / FOOTER_ENTRY_LEN);
    for chunk in bytes.chunks_exact(FOOTER_ENTRY_LEN) {
        if chunk[21..24] != [0, 0, 0] {
            return Err(StreamError::CorruptFooter("entry padding set"));
        }
        entries.push(BlockEntry {
            offset: get_u64(&chunk[0..8]),
            raw_len: get_u32(&chunk[8..12]),
            comp_len: get_u32(&chunk[12..16]),
            crc: get_u32(&chunk[16..20]),
            method: chunk[20],
        });
    }
    Ok(entries)
}

/// Encode the fixed trailer.
#[must_use]
pub fn encode_trailer(footer_offset: u64, num_blocks: u64, footer_crc: u32) -> [u8; TRAILER_LEN] {
    let mut t = [0u8; TRAILER_LEN];
    t[0..8].copy_from_slice(&footer_offset.to_le_bytes());
    t[8..16].copy_from_slice(&num_blocks.to_le_bytes());
    t[16..20].copy_from_slice(&footer_crc.to_le_bytes());
    t[20..24].copy_from_slice(&TRAILER_MAGIC);
    t
}

/// Parse the trailer into `(footer_offset, num_blocks, footer_crc)`.
///
/// # Errors
/// [`StreamError::CorruptFooter`] when the trailing magic is absent.
pub fn parse_trailer(t: &[u8; TRAILER_LEN]) -> Result<(u64, u64, u32), StreamError> {
    if t[20..24] != TRAILER_MAGIC {
        return Err(StreamError::CorruptFooter("bad trailer magic"));
    }
    Ok((get_u64(&t[0..8]), get_u64(&t[8..16]), get_u32(&t[16..20])))
}

/// The parsed, validated index of a container: block size plus one entry
/// per block, supporting O(1) offset→block mapping.
#[derive(Debug, Clone)]
pub struct StreamIndex {
    /// Raw bytes per block (every block but the last holds exactly this).
    pub block_size: u64,
    /// Per-block entries, in stream order.
    pub entries: Vec<BlockEntry>,
}

impl StreamIndex {
    /// Total decoded (raw) length of the stream.
    #[must_use]
    pub fn total_raw(&self) -> u64 {
        self.entries.iter().map(|e| u64::from(e.raw_len)).sum()
    }

    /// Number of blocks.
    #[must_use]
    pub fn num_blocks(&self) -> usize {
        self.entries.len()
    }

    /// The block containing decoded offset `pos` — O(1), because all
    /// blocks but the last are exactly `block_size` raw bytes.
    #[must_use]
    pub fn block_of(&self, pos: u64) -> usize {
        ((pos / self.block_size) as usize).min(self.entries.len().saturating_sub(1))
    }

    /// Decoded start offset of block `i`.
    #[must_use]
    pub fn block_start(&self, i: usize) -> u64 {
        self.block_size * i as u64
    }

    /// The contiguous run of blocks covering decoded range `start..end`
    /// (empty when the range is empty).
    #[must_use]
    pub fn covering(&self, start: u64, end: u64) -> std::ops::Range<usize> {
        if start >= end || self.entries.is_empty() {
            return 0..0;
        }
        self.block_of(start)..self.block_of(end - 1) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip_and_validation() {
        let h = encode_header(1 << 16);
        assert_eq!(parse_header(&h).unwrap(), 1 << 16);
        let mut bad = h;
        bad[0] ^= 1;
        assert!(matches!(
            parse_header(&bad),
            Err(StreamError::NotAContainer)
        ));
        let mut bad = h;
        bad[4] = 9;
        assert!(matches!(
            parse_header(&bad),
            Err(StreamError::UnsupportedVersion(9))
        ));
        let mut bad = h;
        bad[6] = 1;
        assert!(matches!(
            parse_header(&bad),
            Err(StreamError::CorruptHeader(_))
        ));
        assert!(matches!(
            parse_header(&encode_header(0)),
            Err(StreamError::CorruptHeader(_))
        ));
    }

    #[test]
    fn record_and_footer_roundtrip() {
        let rh = RecordHeader {
            method: METHOD_LZ1,
            raw_len: 1000,
            comp_len: 400,
            crc: 0xDEAD_BEEF,
        };
        let enc = encode_record_header(&rh);
        let tail: [u8; RECORD_HEADER_LEN - 1] = enc[1..].try_into().unwrap();
        assert_eq!(parse_record_tail(enc[0], &tail), rh);

        let entries = vec![
            BlockEntry {
                offset: 16,
                raw_len: 1000,
                comp_len: 400,
                crc: 1,
                method: METHOD_LZ1,
            },
            BlockEntry {
                offset: 429,
                raw_len: 60,
                comp_len: 60,
                crc: 2,
                method: METHOD_STORED,
            },
        ];
        let bytes = encode_footer(&entries);
        assert_eq!(bytes.len(), 2 * FOOTER_ENTRY_LEN);
        assert_eq!(parse_footer(&bytes).unwrap(), entries);
        assert!(parse_footer(&bytes[..FOOTER_ENTRY_LEN + 3]).is_err());
    }

    #[test]
    fn trailer_roundtrip() {
        let t = encode_trailer(12345, 7, 0xAB);
        assert_eq!(parse_trailer(&t).unwrap(), (12345, 7, 0xAB));
        let mut bad = t;
        bad[23] ^= 0xFF;
        assert!(parse_trailer(&bad).is_err());
    }

    #[test]
    fn index_maps_offsets_to_blocks() {
        let mk = |raw: u32, i: u64| BlockEntry {
            offset: 16 + i * 100,
            raw_len: raw,
            comp_len: 10,
            crc: 0,
            method: METHOD_LZ1,
        };
        let idx = StreamIndex {
            block_size: 100,
            entries: vec![mk(100, 0), mk(100, 1), mk(37, 2)],
        };
        assert_eq!(idx.total_raw(), 237);
        assert_eq!(idx.block_of(0), 0);
        assert_eq!(idx.block_of(99), 0);
        assert_eq!(idx.block_of(100), 1);
        assert_eq!(idx.block_of(236), 2);
        assert_eq!(idx.covering(0, 237), 0..3);
        assert_eq!(idx.covering(150, 180), 1..2);
        assert_eq!(idx.covering(99, 101), 0..2);
        assert_eq!(idx.covering(50, 50), 0..0);
    }
}
