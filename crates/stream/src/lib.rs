//! `pardict-stream`: chunked parallel LZ1 streaming with a framed,
//! random-access container format.
//!
//! The whole-buffer compressor ([`pardict_compress::lz1_compress`],
//! Theorem 4.2/4.3 of Farach & Muthukrishnan) needs the entire text
//! resident and parses it as one unit. This crate trades a bounded amount
//! of compression ratio for three properties that matter past a few
//! megabytes:
//!
//! 1. **Bounded memory** — input is split into fixed-size blocks and only
//!    one wave of blocks is in flight at a time.
//! 2. **Parallel throughput** — each wave of blocks is one PRAM
//!    super-step: blocks compress concurrently, the caller's ledger is
//!    charged Σ work and max depth, matching the paper's work/depth
//!    accounting.
//! 3. **O(1) random access** — the container records an index footer, and
//!    every block but the last holds exactly `block_size` raw bytes, so a
//!    decoded offset maps to its block by division and any byte range is
//!    served by decoding only the covering blocks.
//!
//! Restricting each block's back-references to a block-local window is the
//! approximation scheme of Fischer–Gagie–Gawrychowski–Kociumaka
//! (*Approximating LZ77 via Small-Space Multiple-Pattern Matching*): the
//! blockwise parse is provably close to the unrestricted one, and
//! [`approximation_sizes`] measures the actual gap on a given input.
//!
//! See the [`format`] module for the byte-level container layout and the
//! [`error`] module for the structural-vs-block-local failure vocabulary
//! behind the skip-and-report recovery contract.

#![warn(missing_docs)]

pub mod crc;
pub mod error;
pub mod format;
pub mod layout;
mod reader;
mod writer;

#[allow(deprecated)]
pub use crc::crc32;
pub use error::{BlockIssue, IssueKind, StreamError};
pub use format::{
    BlockEntry, RecordHeader, StreamIndex, DEFAULT_BLOCK_SIZE, END_OF_BLOCKS, FOOTER_ENTRY_LEN,
    HEADER_LEN, MAGIC, MAX_BLOCK_SIZE, METHOD_LZ1, METHOD_STORED, RECORD_HEADER_LEN, TRAILER_LEN,
    VERSION,
};
pub use layout::{assemble_container, slice_container, ContainerLayout, FooterField, RecordSpan};
pub use reader::{
    decode_block, decompress_stream, is_container, BlockIter, DecodedBlock, DecompressSummary,
    StreamDecompressor, StreamReader,
};
pub use writer::{compress_stream, CompressSummary, StreamCompressor, StreamConfig, STREAM_SEED};

use pardict_compress::{encode_tokens, lz1_compress};
use pardict_pram::Pram;

/// Measure the blockwise approximation against the whole-buffer parse:
/// returns `(streamed_container_bytes, whole_buffer_token_bytes)` for
/// `text` under `cfg`. The ratio quantifies what block-local windows cost
/// on this input — the Fischer et al. bound made concrete.
///
/// # Panics
/// When `text` contains NUL (the whole-buffer reference parse reserves it)
/// or compression fails on an in-memory buffer (impossible I/O error).
#[must_use]
pub fn approximation_sizes(pram: &Pram, text: &[u8], cfg: &StreamConfig) -> (u64, u64) {
    let (container, _) = compress_stream(pram, &mut &text[..], Vec::new(), cfg)
        .expect("in-memory compression cannot fail");
    let whole = encode_tokens(&lz1_compress(pram, text, STREAM_SEED)).len() as u64;
    (container.len() as u64, whole)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn container_detection() {
        let pram = Pram::seq();
        let (bytes, _) = compress_stream(
            &pram,
            &mut &b"hello hello hello"[..],
            Vec::new(),
            &StreamConfig::with_block_size(8),
        )
        .unwrap();
        assert!(is_container(&bytes));
        assert!(!is_container(b"PDZ"));
        assert!(!is_container(b"plain text"));
        assert!(!is_container(&[]));
    }

    #[test]
    fn approximation_stays_close_on_repetitive_text() {
        let pram = Pram::seq();
        let text = b"the paper compresses the text the paper indexes the text ".repeat(64);
        let cfg = StreamConfig::with_block_size(1024);
        let (streamed, whole) = approximation_sizes(&pram, &text, &cfg);
        assert!(whole > 0);
        assert!(
            streamed > whole,
            "framing and block-local windows cost bytes"
        );
        // On this tiny, highly repetitive input the whole-buffer parse
        // collapses to a handful of phrases, so fixed framing dominates
        // the streamed size; per-block the parse stays in the same regime.
        // The integration tests assert the 15% relative bound at realistic
        // block sizes on realistic corpora.
        let blocks = text.len().div_ceil(1024) as u64;
        let framing = (format::HEADER_LEN + 1 + format::TRAILER_LEN) as u64
            + blocks * (format::RECORD_HEADER_LEN + format::FOOTER_ENTRY_LEN) as u64;
        assert!(
            streamed <= framing + blocks * (whole + 8),
            "blockwise {streamed} vs whole {whole} diverged beyond per-block parses"
        );
        assert!(
            streamed < text.len() as u64,
            "repetitive input must still shrink end-to-end"
        );
    }
}
