//! Deprecated home of the container checksum. CRC-32 is shared by the
//! store's ledger records too, so the implementation now lives in
//! [`pardict_core::crc32`]; this module remains only as a re-export for
//! downstream code that imported it from here.

#[deprecated(since = "0.1.0", note = "use `pardict_core::crc32` instead")]
pub use pardict_core::crc32;
