//! Chunked parallel compression: fixed-size blocks, compressed
//! independently in waves, framed into the container format.
//!
//! Fischer–Gagie–Gawrychowski–Kociumaka (*Approximating LZ77 via
//! Small-Space Multiple-Pattern Matching*) is the licence for chunking:
//! restricting back-references to a block-local window yields a provably
//! bounded approximation of the full LZ77 parse, while buying block
//! independence — bounded memory, parallel blocks, and O(1) random access.
//!
//! Parallel accounting follows the PRAM model the workspace is built on: a
//! wave of in-flight blocks is one parallel super-step, so its ledger
//! charge is the **sum of block work** and the **maximum of block depths**.
//! Each block runs the full Theorem 4.2 pipeline (`lz1_compress`) on its
//! own sequential context; the caller's [`Pram`] receives the aggregated
//! attribution — the same scheme the service engine uses per batch.

use crate::error::StreamError;
use crate::format::{
    encode_footer, encode_header, encode_record_header, encode_trailer, BlockEntry, RecordHeader,
    DEFAULT_BLOCK_SIZE, END_OF_BLOCKS, MAX_BLOCK_SIZE, METHOD_LZ1, METHOD_STORED,
    RECORD_HEADER_LEN,
};
use pardict_compress::{encode_tokens, lz1_compress};
use pardict_core::crc32;
use pardict_pram::{Cost, Pram, SplitMix64};
use std::io::{Read, Write};

/// Seed for the block-local LZ1 fingerprint family; fixed (and mixed with
/// the block index) so container bytes are reproducible across runs and
/// replicas.
pub const STREAM_SEED: u64 = 0x57E4_A11B_10C5_EED5;

/// Streaming pipeline knobs.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Raw bytes per block. Larger blocks compress better (more window)
    /// but cost more memory per in-flight block and coarser random access.
    pub block_size: usize,
    /// Blocks compressed concurrently per wave; bounds in-flight memory at
    /// roughly `block_size * max_in_flight` plus outputs.
    pub max_in_flight: usize,
}

impl Default for StreamConfig {
    fn default() -> Self {
        Self {
            block_size: DEFAULT_BLOCK_SIZE,
            max_in_flight: std::thread::available_parallelism()
                .map_or(4, std::num::NonZeroUsize::get)
                .min(16),
        }
    }
}

impl StreamConfig {
    /// A config with the given block size and default parallelism.
    ///
    /// # Panics
    /// When `block_size` is zero or exceeds [`MAX_BLOCK_SIZE`].
    #[must_use]
    pub fn with_block_size(block_size: usize) -> Self {
        assert!(
            (1..=MAX_BLOCK_SIZE).contains(&block_size),
            "block size {block_size} out of range"
        );
        Self {
            block_size,
            ..Self::default()
        }
    }
}

/// What one finished compression run produced.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompressSummary {
    /// Raw bytes consumed.
    pub raw_bytes: u64,
    /// Total container bytes emitted (header through trailer).
    pub container_bytes: u64,
    /// Number of blocks.
    pub blocks: u64,
    /// Blocks stored verbatim (incompressible, or containing NUL).
    pub stored_blocks: u64,
    /// Total LZ1 phrases across compressed blocks.
    pub phrases: u64,
    /// Ledger cost attributed to this run (wave-aggregated).
    pub cost: Cost,
}

/// Per-block seed: deterministic by index, independent of wave grouping.
fn block_seed(index: u64) -> u64 {
    SplitMix64::new(STREAM_SEED ^ index).next_u64()
}

struct BlockOut {
    method: u8,
    payload: Vec<u8>,
    raw_len: u32,
    phrases: u64,
    cost: Cost,
}

/// Compress one block on its own sequential context. Blocks containing
/// the NUL sentinel (reserved by the suffix tree) and blocks that LZ1
/// fails to shrink are stored verbatim, so the container accepts
/// arbitrary bytes.
fn compress_block(block: &[u8], index: u64) -> BlockOut {
    let raw_len = block.len() as u32;
    if !block.contains(&0) {
        let pram = Pram::seq();
        let (tokens, cost) = pram.metered(|p| lz1_compress(p, block, block_seed(index)));
        let payload = encode_tokens(&tokens);
        if payload.len() < block.len() {
            return BlockOut {
                method: METHOD_LZ1,
                payload,
                raw_len,
                phrases: tokens.len() as u64,
                cost,
            };
        }
        // Fall through: parse computed but not worth keeping — still a
        // real cost, still attributed.
        return BlockOut {
            method: METHOD_STORED,
            payload: block.to_vec(),
            raw_len,
            phrases: 0,
            cost,
        };
    }
    BlockOut {
        method: METHOD_STORED,
        payload: block.to_vec(),
        raw_len,
        phrases: 0,
        cost: Cost {
            work: block.len() as u64,
            depth: 1,
        },
    }
}

/// Compress a wave of blocks as one [`pardict_exec::Wave`] super-step:
/// blocks run concurrently when the caller's context is parallel, the
/// caller's ledger is charged summed work and maximum depth, and a
/// `compress-wave` span (indexed by the wave's first block) records the
/// round when the caller installed an ambient trace scope.
///
/// # Errors
/// [`StreamError::Cancelled`] when the caller's ambient deadline
/// ([`pardict_exec::with_deadline`]) has expired at this wave boundary.
fn compress_wave(
    pram: &Pram,
    blocks: &[&[u8]],
    first_index: u64,
) -> Result<Vec<BlockOut>, StreamError> {
    let wave = pardict_exec::Wave::open(pram, "compress-wave", first_index)?;
    let outs = wave.superstep(blocks.to_vec(), |k, b: &[u8]| {
        let out = compress_block(b, first_index + k as u64);
        let cost = out.cost;
        (out, cost)
    });
    wave.finish();
    Ok(outs)
}

/// A `std::io::Write` adapter that frames everything written through it
/// into the container format, compressing blocks in bounded-memory waves.
///
/// Bytes accumulate until a full wave (`block_size * max_in_flight`) is
/// buffered, then the wave is compressed (in parallel under a
/// `Pram::par()` caller) and written through. Call [`finish`] to flush the
/// final partial wave and emit the index footer — dropping the adapter
/// without finishing leaves a headless, footerless prefix.
///
/// [`finish`]: StreamCompressor::finish
pub struct StreamCompressor<'p, W: Write> {
    pram: &'p Pram,
    inner: W,
    cfg: StreamConfig,
    buf: Vec<u8>,
    entries: Vec<BlockEntry>,
    offset: u64,
    raw_bytes: u64,
    phrases: u64,
    stored_blocks: u64,
    cost_before: Cost,
}

impl<'p, W: Write> StreamCompressor<'p, W> {
    /// Start a container on `inner`, writing the fixed header immediately.
    ///
    /// # Errors
    /// Propagates header-write I/O failures.
    ///
    /// # Panics
    /// When `cfg.block_size` is zero or exceeds [`MAX_BLOCK_SIZE`].
    pub fn new(pram: &'p Pram, mut inner: W, cfg: StreamConfig) -> Result<Self, StreamError> {
        assert!(
            (1..=MAX_BLOCK_SIZE).contains(&cfg.block_size),
            "block size {} out of range",
            cfg.block_size
        );
        let header = encode_header(cfg.block_size as u64);
        inner.write_all(&header)?;
        Ok(Self {
            pram,
            inner,
            cfg,
            buf: Vec::new(),
            entries: Vec::new(),
            offset: header.len() as u64,
            raw_bytes: 0,
            phrases: 0,
            stored_blocks: 0,
            cost_before: pram.cost(),
        })
    }

    fn wave_bytes(&self) -> usize {
        self.cfg.block_size * self.cfg.max_in_flight.max(1)
    }

    /// Compress and emit `nblocks` blocks from the front of the buffer.
    fn emit_blocks(&mut self, nblocks: usize) -> Result<(), StreamError> {
        let blocks: Vec<&[u8]> = self.buf[..]
            .chunks(self.cfg.block_size)
            .take(nblocks)
            .collect();
        let consumed: usize = blocks.iter().map(|b| b.len()).sum();
        let outs = compress_wave(self.pram, &blocks, self.entries.len() as u64)?;
        for out in outs {
            let crc = crc32(&out.payload);
            let header = encode_record_header(&RecordHeader {
                method: out.method,
                raw_len: out.raw_len,
                comp_len: out.payload.len() as u32,
                crc,
            });
            self.inner.write_all(&header)?;
            self.inner.write_all(&out.payload)?;
            self.entries.push(BlockEntry {
                offset: self.offset,
                raw_len: out.raw_len,
                comp_len: out.payload.len() as u32,
                crc,
                method: out.method,
            });
            self.offset += (RECORD_HEADER_LEN + out.payload.len()) as u64;
            self.phrases += out.phrases;
            if out.method == METHOD_STORED {
                self.stored_blocks += 1;
            }
        }
        self.buf.drain(..consumed);
        Ok(())
    }

    /// Flush every full wave currently buffered.
    fn drain_full_waves(&mut self) -> Result<(), StreamError> {
        while self.buf.len() >= self.wave_bytes() {
            self.emit_blocks(self.cfg.max_in_flight.max(1))?;
        }
        Ok(())
    }

    /// Compress the remaining partial wave, write the end-of-blocks
    /// marker, index footer, and trailer, and return the inner writer
    /// with a summary of the run.
    ///
    /// # Errors
    /// Propagates I/O failures from the final writes.
    pub fn finish(mut self) -> Result<(W, CompressSummary), StreamError> {
        while !self.buf.is_empty() {
            let nblocks = self
                .buf
                .len()
                .div_ceil(self.cfg.block_size)
                .min(self.cfg.max_in_flight.max(1));
            self.emit_blocks(nblocks)?;
        }
        self.inner.write_all(&[END_OF_BLOCKS])?;
        let footer = encode_footer(&self.entries);
        self.inner.write_all(&footer)?;
        let trailer = encode_trailer(self.offset + 1, self.entries.len() as u64, crc32(&footer));
        self.inner.write_all(&trailer)?;
        self.inner.flush()?;
        let container_bytes = self.offset + 1 + footer.len() as u64 + trailer.len() as u64;
        let summary = CompressSummary {
            raw_bytes: self.raw_bytes,
            container_bytes,
            blocks: self.entries.len() as u64,
            stored_blocks: self.stored_blocks,
            phrases: self.phrases,
            cost: self.pram.cost().since(self.cost_before),
        };
        Ok((self.inner, summary))
    }
}

impl<W: Write> Write for StreamCompressor<'_, W> {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        self.buf.extend_from_slice(data);
        self.raw_bytes += data.len() as u64;
        self.drain_full_waves()?;
        Ok(data.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        // Block boundaries are fixed-size, so flushing cannot force out a
        // partial block; full waves are already drained eagerly.
        self.inner.flush()
    }
}

/// Pump `reader` through a [`StreamCompressor`] into `writer`: the
/// whole-file convenience entry point with bounded in-flight memory.
///
/// # Errors
/// Propagates I/O failures from either side.
pub fn compress_stream<R: Read + ?Sized, W: Write>(
    pram: &Pram,
    reader: &mut R,
    writer: W,
    cfg: &StreamConfig,
) -> Result<(W, CompressSummary), StreamError> {
    let mut comp = StreamCompressor::new(pram, writer, cfg.clone())?;
    let mut chunk = vec![0u8; cfg.block_size.clamp(1, 1 << 20)];
    loop {
        let n = reader.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        comp.write_all(&chunk[..n])?;
    }
    comp.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{parse_header, HEADER_LEN, TRAILER_LEN};

    #[test]
    fn empty_input_yields_blockless_container() {
        let pram = Pram::seq();
        let (bytes, summary) =
            compress_stream(&pram, &mut &[][..], Vec::new(), &StreamConfig::default()).unwrap();
        assert_eq!(summary.blocks, 0);
        assert_eq!(summary.raw_bytes, 0);
        // header + end marker + empty footer + trailer
        assert_eq!(bytes.len(), HEADER_LEN + 1 + TRAILER_LEN);
        assert_eq!(summary.container_bytes, bytes.len() as u64);
        assert!(parse_header(&bytes).is_ok());
    }

    #[test]
    fn block_count_and_sizes_follow_config() {
        let pram = Pram::seq();
        let data = b"abcabcabcabc".repeat(100); // 1200 bytes
        let cfg = StreamConfig::with_block_size(500);
        let (_, summary) = compress_stream(&pram, &mut &data[..], Vec::new(), &cfg).unwrap();
        assert_eq!(summary.blocks, 3); // 500 + 500 + 200
        assert_eq!(summary.raw_bytes, 1200);
        assert!(
            summary.container_bytes < 1200,
            "repetitive data must shrink"
        );
    }

    #[test]
    fn nul_and_incompressible_blocks_are_stored() {
        let pram = Pram::seq();
        // Block 1: NUL-bearing. Block 2: too short to compress.
        let mut data = vec![0u8; 8];
        data.extend_from_slice(b"qzwxecrv");
        let cfg = StreamConfig::with_block_size(8);
        let (bytes, summary) = compress_stream(&pram, &mut &data[..], Vec::new(), &cfg).unwrap();
        assert_eq!(summary.blocks, 2);
        assert_eq!(summary.stored_blocks, 2);
        assert!(bytes.len() > data.len(), "stored blocks only add framing");
    }

    #[test]
    fn output_is_deterministic_and_mode_independent() {
        let data = b"tick tock tick tock tick tock round and round".repeat(40);
        let cfg = StreamConfig {
            block_size: 256,
            max_in_flight: 3,
        };
        let (a, ca) = compress_stream(&Pram::seq(), &mut &data[..], Vec::new(), &cfg).unwrap();
        let (b, cb) = compress_stream(&Pram::par(), &mut &data[..], Vec::new(), &cfg).unwrap();
        assert_eq!(a, b, "container bytes must not depend on execution mode");
        assert_eq!(ca.cost, cb.cost, "ledger attribution must match");
        // Wave aggregation: depth is a max, so it must be far below the
        // serial sum of per-block depths while work is the full sum.
        assert!(ca.cost.work > 0 && ca.cost.depth > 0);
    }

    #[test]
    fn wave_depth_is_max_not_sum() {
        let data = b"la la la la la la la la".repeat(64); // ~1.5 KiB
        let one = StreamConfig {
            block_size: 128,
            max_in_flight: 1,
        };
        let many = StreamConfig {
            block_size: 128,
            max_in_flight: 8,
        };
        let (_, c1) = compress_stream(&Pram::seq(), &mut &data[..], Vec::new(), &one).unwrap();
        let (_, c8) = compress_stream(&Pram::seq(), &mut &data[..], Vec::new(), &many).unwrap();
        assert_eq!(c1.cost.work, c8.cost.work, "work is grouping-independent");
        assert!(
            c8.cost.depth * 4 < c1.cost.depth,
            "8-wide waves must collapse depth: {} vs {}",
            c8.cost.depth,
            c1.cost.depth
        );
    }
}
