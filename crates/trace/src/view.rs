//! Text viewer for exported traces (`pardict trace <file>`) and the
//! span-tree invariant checks shared by the test suites.

use crate::export::OwnedSpan;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt::Write as _;

/// Check the cost invariant: for every span with nonzero attributed work,
/// the summed costs of its children must fit inside it (span costs are
/// inclusive). Purely structural spans (zero cost) are exempt — they
/// group children without accounting for them.
///
/// # Errors
/// Names the first parent whose children over-claim work or depth.
pub fn check_costs(spans: &[OwnedSpan]) -> Result<(), String> {
    let mut children: HashMap<(u64, u64), (u64, u64)> = HashMap::new();
    for s in spans {
        if s.parent != 0 {
            let e = children.entry((s.trace, s.parent)).or_insert((0, 0));
            e.0 += s.work;
            e.1 += s.depth;
        }
    }
    for s in spans {
        if s.work == 0 && s.depth == 0 {
            continue;
        }
        if let Some(&(w, d)) = children.get(&(s.trace, s.span)) {
            if w > s.work || d > s.depth {
                return Err(format!(
                    "span {:016x}/{} ({}) claims work={} depth={} but its children sum to \
                     work={w} depth={d}",
                    s.span, s.index, s.name, s.work, s.depth
                ));
            }
        }
    }
    Ok(())
}

/// Check the interval invariant: every child span must nest inside its
/// parent's `[start, end]` interval (when the parent is present in the
/// export — sampling can drop ancestors of remotely-recorded spans, and
/// ring overflow can drop anything).
///
/// # Errors
/// Names the first child that leaks outside its parent's interval.
pub fn check_nesting(spans: &[OwnedSpan]) -> Result<(), String> {
    let by_id: HashMap<(u64, u64), &OwnedSpan> =
        spans.iter().map(|s| ((s.trace, s.span), s)).collect();
    for s in spans {
        if s.parent == 0 {
            continue;
        }
        if let Some(p) = by_id.get(&(s.trace, s.parent)) {
            if s.start < p.start || s.end > p.end {
                return Err(format!(
                    "span {:016x} ({}) [{}..{}] leaks outside parent {:016x} ({}) [{}..{}]",
                    s.span, s.name, s.start, s.end, s.parent, p.name, p.start, p.end
                ));
            }
        }
    }
    Ok(())
}

struct Agg {
    count: usize,
    work: u64,
    depth: u64,
    elapsed: u64,
}

fn aggregate<'a>(
    spans: &'a [OwnedSpan],
    key: impl Fn(&'a OwnedSpan) -> Option<&'a str>,
) -> BTreeMap<&'a str, Agg> {
    let mut out: BTreeMap<&str, Agg> = BTreeMap::new();
    for s in spans {
        let Some(k) = key(s) else { continue };
        let e = out.entry(k).or_insert(Agg {
            count: 0,
            work: 0,
            depth: 0,
            elapsed: 0,
        });
        e.count += 1;
        e.work += s.work;
        e.depth += s.depth;
        e.elapsed += s.end - s.start;
    }
    out
}

/// Render the full report: summary, per-stage and per-lane breakdowns,
/// the slowest-N top-level spans, and a span-tree of the slowest trace.
#[must_use]
pub fn render_report(spans: &[OwnedSpan], slowest: usize) -> String {
    let mut out = String::new();
    let ids: HashSet<(u64, u64)> = spans.iter().map(|s| (s.trace, s.span)).collect();
    let traces: HashSet<u64> = spans.iter().map(|s| s.trace).collect();
    // "Top-level" = parent absent from the export: true roots, plus spans
    // whose ancestors were sampled away or dropped. Their costs are
    // disjoint, so totals sum over exactly these.
    let tops: Vec<&OwnedSpan> = spans
        .iter()
        .filter(|s| !ids.contains(&(s.trace, s.parent)))
        .collect();
    let total_work: u64 = tops.iter().map(|s| s.work).sum();
    let total_depth: u64 = tops.iter().map(|s| s.depth).sum();
    let _ = writeln!(
        out,
        "trace export: {} spans, {} traces, {} top-level; total work {} depth {}",
        spans.len(),
        traces.len(),
        tops.len(),
        total_work,
        total_depth
    );
    let cost_line = match check_costs(spans) {
        Ok(()) => "cost invariant: ok (children sum within every costed parent)".to_string(),
        Err(e) => format!("cost invariant: VIOLATED — {e}"),
    };
    let _ = writeln!(out, "{cost_line}");

    let _ = writeln!(out, "\nper-stage:");
    let _ = writeln!(
        out,
        "  {:<16} {:>7} {:>12} {:>8} {:>10}",
        "stage", "spans", "work", "depth", "elapsed"
    );
    for (name, a) in aggregate(spans, |s| Some(s.name.as_str())) {
        let _ = writeln!(
            out,
            "  {:<16} {:>7} {:>12} {:>8} {:>10}",
            name, a.count, a.work, a.depth, a.elapsed
        );
    }

    let lanes = aggregate(spans, |s| (!s.lane.is_empty()).then_some(s.lane.as_str()));
    if !lanes.is_empty() {
        let _ = writeln!(out, "\nper-lane:");
        let _ = writeln!(
            out,
            "  {:<16} {:>7} {:>12} {:>8} {:>10}",
            "lane", "spans", "work", "depth", "elapsed"
        );
        for (lane, a) in lanes {
            let _ = writeln!(
                out,
                "  {:<16} {:>7} {:>12} {:>8} {:>10}",
                lane, a.count, a.work, a.depth, a.elapsed
            );
        }
    }

    let mut by_elapsed: Vec<&OwnedSpan> = tops.clone();
    by_elapsed.sort_by_key(|s| (std::cmp::Reverse(s.end - s.start), s.trace, s.span));
    let n = slowest.min(by_elapsed.len());
    let _ = writeln!(out, "\nslowest {n} top-level spans:");
    for s in &by_elapsed[..n] {
        let _ = writeln!(
            out,
            "  {:>10} ticks  {:<12} trace={:016x} work={} depth={} lane={}",
            s.end - s.start,
            s.name,
            s.trace,
            s.work,
            s.depth,
            if s.lane.is_empty() { "-" } else { &s.lane }
        );
    }

    if let Some(slowest_top) = by_elapsed.first() {
        let _ = writeln!(out, "\nspan tree (trace {:016x}):", slowest_top.trace);
        render_tree(&mut out, spans, slowest_top.trace);
    }
    out
}

fn render_tree(out: &mut String, spans: &[OwnedSpan], trace: u64) {
    let mut in_trace: Vec<&OwnedSpan> = spans.iter().filter(|s| s.trace == trace).collect();
    in_trace.sort_by_key(|s| (s.start, s.span));
    let ids: HashSet<u64> = in_trace.iter().map(|s| s.span).collect();
    let mut children: HashMap<u64, Vec<&OwnedSpan>> = HashMap::new();
    let mut roots: Vec<&OwnedSpan> = Vec::new();
    for s in &in_trace {
        if ids.contains(&s.parent) {
            children.entry(s.parent).or_default().push(s);
        } else {
            roots.push(s);
        }
    }
    fn walk(
        out: &mut String,
        s: &OwnedSpan,
        children: &HashMap<u64, Vec<&OwnedSpan>>,
        depth: usize,
    ) {
        let pad = "  ".repeat(depth + 1);
        let lane = if s.lane.is_empty() {
            String::new()
        } else {
            format!(" lane={}", s.lane)
        };
        let _ = writeln!(
            out,
            "{pad}{}#{} [{}..{}] work={} depth={}{lane}",
            s.name, s.index, s.start, s.end, s.work, s.depth
        );
        if let Some(kids) = children.get(&s.span) {
            for k in kids {
                walk(out, k, children, depth + 1);
            }
        }
    }
    for r in roots {
        walk(out, r, &children, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(
        trace: u64,
        id: u64,
        parent: u64,
        name: &str,
        start: u64,
        end: u64,
        work: u64,
    ) -> OwnedSpan {
        OwnedSpan {
            trace,
            span: id,
            parent,
            name: name.to_string(),
            lane: String::new(),
            index: 0,
            start,
            end,
            work,
            depth: work,
        }
    }

    #[test]
    fn cost_invariant_catches_overclaiming_children() {
        let ok = vec![
            span(1, 10, 0, "request", 0, 10, 100),
            span(1, 11, 10, "exec", 1, 9, 60),
            span(1, 12, 10, "exec", 1, 9, 40),
        ];
        assert!(check_costs(&ok).is_ok());
        let bad = vec![
            span(1, 10, 0, "request", 0, 10, 100),
            span(1, 11, 10, "exec", 1, 9, 80),
            span(1, 12, 10, "exec", 1, 9, 40),
        ];
        assert!(check_costs(&bad).is_err());
        // Zero-cost structural parents are exempt.
        let structural = vec![
            span(1, 10, 0, "route", 0, 10, 0),
            span(1, 11, 10, "exec", 1, 9, 80),
        ];
        assert!(check_costs(&structural).is_ok());
    }

    #[test]
    fn nesting_invariant_catches_interval_leaks() {
        let ok = vec![
            span(1, 10, 0, "request", 0, 10, 1),
            span(1, 11, 10, "exec", 2, 8, 1),
        ];
        assert!(check_nesting(&ok).is_ok());
        let bad = vec![
            span(1, 10, 0, "request", 0, 10, 1),
            span(1, 11, 10, "exec", 2, 12, 1),
        ];
        assert!(check_nesting(&bad).is_err());
    }

    #[test]
    fn report_renders_sections_and_tree() {
        let spans = vec![
            span(1, 10, 0, "request", 0, 10, 100),
            span(1, 11, 10, "exec", 1, 9, 100),
            span(2, 20, 0, "request", 0, 4, 7),
        ];
        let report = render_report(&spans, 5);
        assert!(report.contains("3 spans, 2 traces"));
        assert!(report.contains("per-stage:"));
        assert!(report.contains("slowest 2 top-level spans:"));
        assert!(report.contains("span tree"));
        assert!(report.contains("exec#0 [1..9]"));
        assert!(report.contains("cost invariant: ok"));
    }
}
