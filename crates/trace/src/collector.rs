//! Lock-free bounded span collector.
//!
//! A Vyukov-style MPMC ring: each slot carries a sequence number whose
//! distance from the enqueue/dequeue cursor says whether the slot is free,
//! full, or contended. Producers on the request hot path never block and
//! never spin on a full ring — a full ring *drops* the span and bumps a
//! counter, which is the honest behaviour for a tracer (losing telemetry
//! must never slow the traced work).

use crate::SpanRecord;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

struct Slot {
    seq: AtomicUsize,
    value: UnsafeCell<Option<SpanRecord>>,
}

/// Bounded lock-free MPMC queue of spans with a drop counter.
pub struct Collector {
    slots: Box<[Slot]>,
    mask: usize,
    enqueue: AtomicUsize,
    dequeue: AtomicUsize,
    dropped: AtomicU64,
}

// SAFETY: slot values are only accessed by the thread that won the
// corresponding CAS on `enqueue`/`dequeue`, with the slot's `seq`
// (Acquire/Release) ordering the hand-off between producer and consumer.
unsafe impl Sync for Collector {}
unsafe impl Send for Collector {}

impl Collector {
    /// Build with `capacity` rounded up to a power of two (min 2).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.next_power_of_two().max(2);
        let slots = (0..cap)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                value: UnsafeCell::new(None),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self {
            slots,
            mask: cap - 1,
            enqueue: AtomicUsize::new(0),
            dequeue: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Try to enqueue; on a full ring the span is dropped (counted) and
    /// `false` returned. Never blocks.
    pub fn push(&self, rec: SpanRecord) -> bool {
        let mut pos = self.enqueue.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == pos {
                match self.enqueue.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: winning the CAS gives this thread sole
                        // ownership of the slot until the Release store.
                        unsafe { *slot.value.get() = Some(rec) };
                        slot.seq.store(pos.wrapping_add(1), Ordering::Release);
                        return true;
                    }
                    Err(cur) => pos = cur,
                }
            } else if seq.wrapping_sub(pos) > self.mask {
                // Slot still holds an unconsumed record one lap behind:
                // the ring is full. Drop, count, move on.
                self.dropped.fetch_add(1, Ordering::Relaxed);
                return false;
            } else {
                pos = self.enqueue.load(Ordering::Relaxed);
            }
        }
    }

    /// Dequeue one span, if any.
    pub fn pop(&self) -> Option<SpanRecord> {
        let mut pos = self.dequeue.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == pos.wrapping_add(1) {
                match self.dequeue.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: winning the CAS gives this thread sole
                        // ownership of the slot until the Release store.
                        let rec = unsafe { (*slot.value.get()).take() };
                        slot.seq.store(
                            pos.wrapping_add(self.mask).wrapping_add(1),
                            Ordering::Release,
                        );
                        return rec;
                    }
                    Err(cur) => pos = cur,
                }
            } else if seq.wrapping_sub(pos) <= self.mask {
                // seq == pos: empty at this cursor.
                return None;
            } else {
                pos = self.dequeue.load(Ordering::Relaxed);
            }
        }
    }

    /// Drain everything currently queued.
    #[must_use]
    pub fn drain(&self) -> Vec<SpanRecord> {
        let mut out = Vec::new();
        while let Some(rec) = self.pop() {
            out.push(rec);
        }
        out
    }

    /// Spans discarded because the ring was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SpanId, TraceId};
    use pardict_pram::Cost;

    fn rec(i: u64) -> SpanRecord {
        SpanRecord {
            trace: TraceId(1),
            span: SpanId(i + 1),
            parent: SpanId(0),
            name: "t",
            lane: None,
            index: i,
            start: i,
            end: i + 1,
            cost: Cost::default(),
        }
    }

    #[test]
    fn fifo_within_capacity() {
        let c = Collector::new(8);
        for i in 0..8 {
            assert!(c.push(rec(i)));
        }
        let drained = c.drain();
        assert_eq!(drained.len(), 8);
        assert!(drained.iter().enumerate().all(|(i, r)| r.index == i as u64));
        assert_eq!(c.dropped(), 0);
    }

    #[test]
    fn overflow_drops_and_counts_without_blocking() {
        let c = Collector::new(4);
        let mut accepted = 0;
        for i in 0..10 {
            if c.push(rec(i)) {
                accepted += 1;
            }
        }
        assert_eq!(accepted, 4);
        assert_eq!(c.dropped(), 6);
        assert_eq!(c.drain().len(), 4);
        // Space reclaimed after drain.
        assert!(c.push(rec(99)));
    }

    #[test]
    fn concurrent_producers_lose_nothing_when_sized() {
        let c = Collector::new(1 << 12);
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let c = &c;
                s.spawn(move || {
                    for i in 0..256 {
                        assert!(c.push(rec(t * 1000 + i)));
                    }
                });
            }
        });
        let mut seen: Vec<u64> = c.drain().iter().map(|r| r.index).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 8 * 256);
        assert_eq!(c.dropped(), 0);
    }
}
