//! Canonical JSONL export and a dependency-free parser.
//!
//! One span per line, keys in a fixed order, ids as zero-padded hex
//! strings, lines sorted by `(trace, start, span)` — so a deterministic
//! run exports byte-identical files, which `scripts/ci.sh` checks with
//! `cmp`. The parser accepts any key order and is what `pardict trace`
//! uses; a malformed file is a hard error (exit 1), never a guess.

use crate::SpanRecord;
use std::fmt::Write as _;

/// An owned span parsed back from JSONL (names and lanes become `String`s).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OwnedSpan {
    /// Trace id.
    pub trace: u64,
    /// Span id.
    pub span: u64,
    /// Parent span id (0 for roots).
    pub parent: u64,
    /// Stage name.
    pub name: String,
    /// Execution lane ("" when the stage has none).
    pub lane: String,
    /// Site-chosen disambiguator.
    pub index: u64,
    /// Clock reading at span start.
    pub start: u64,
    /// Clock reading at span end.
    pub end: u64,
    /// PRAM work attributed to the span.
    pub work: u64,
    /// PRAM depth attributed to the span.
    pub depth: u64,
}

impl From<&SpanRecord> for OwnedSpan {
    fn from(r: &SpanRecord) -> Self {
        Self {
            trace: r.trace.0,
            span: r.span.0,
            parent: r.parent.0,
            name: r.name.to_string(),
            lane: r.lane.unwrap_or("").to_string(),
            index: r.index,
            start: r.start,
            end: r.end,
            work: r.cost.work,
            depth: r.cost.depth,
        }
    }
}

/// Serialize spans as canonical JSONL: sorted by `(trace, start, span)`,
/// fixed key order, hex ids. Byte-identical for identical span sets.
#[must_use]
pub fn export_jsonl(spans: &[SpanRecord]) -> String {
    let mut sorted: Vec<&SpanRecord> = spans.iter().collect();
    sorted.sort_by_key(|s| (s.trace.0, s.start, s.span.0));
    let mut out = String::new();
    for s in sorted {
        let _ = write!(
            out,
            "{{\"trace\":\"{:016x}\",\"span\":\"{:016x}\",\"parent\":\"{:016x}\",\
             \"name\":\"{}\",\"lane\":\"{}\",\"index\":{},\"start\":{},\"end\":{},\
             \"work\":{},\"depth\":{}}}",
            s.trace.0,
            s.span.0,
            s.parent.0,
            escape(s.name),
            escape(s.lane.unwrap_or("")),
            s.index,
            s.start,
            s.end,
            s.cost.work,
            s.cost.depth,
        );
        out.push('\n');
    }
    out
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Parse a JSONL trace export.
///
/// # Errors
/// Describes the first malformed line: bad JSON shape, missing or
/// duplicate keys, non-hex ids, `end < start`.
pub fn parse_jsonl(input: &str) -> Result<Vec<OwnedSpan>, String> {
    let mut out = Vec::new();
    for (lineno, line) in input.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let span = parse_line(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        if span.end < span.start {
            return Err(format!("line {}: span ends before it starts", lineno + 1));
        }
        out.push(span);
    }
    if out.is_empty() {
        return Err("no spans in file".into());
    }
    Ok(out)
}

/// Minimal parser for one flat JSON object with string/number values.
fn parse_line(line: &str) -> Result<OwnedSpan, String> {
    let mut p = Parser {
        bytes: line.as_bytes(),
        pos: 0,
    };
    p.expect(b'{')?;
    let mut trace = None;
    let mut span = None;
    let mut parent = None;
    let mut name = None;
    let mut lane = None;
    let mut index = None;
    let mut start = None;
    let mut end = None;
    let mut work = None;
    let mut depth = None;
    loop {
        p.skip_ws();
        let key = p.string()?;
        p.skip_ws();
        p.expect(b':')?;
        p.skip_ws();
        match key.as_str() {
            "trace" => set_once(&mut trace, p.hex_id()?, "trace")?,
            "span" => set_once(&mut span, p.hex_id()?, "span")?,
            "parent" => set_once(&mut parent, p.hex_id()?, "parent")?,
            "name" => set_once(&mut name, p.string()?, "name")?,
            "lane" => set_once(&mut lane, p.string()?, "lane")?,
            "index" => set_once(&mut index, p.number()?, "index")?,
            "start" => set_once(&mut start, p.number()?, "start")?,
            "end" => set_once(&mut end, p.number()?, "end")?,
            "work" => set_once(&mut work, p.number()?, "work")?,
            "depth" => set_once(&mut depth, p.number()?, "depth")?,
            other => return Err(format!("unknown key {other:?}")),
        }
        p.skip_ws();
        match p.next()? {
            b',' => {}
            b'}' => break,
            c => return Err(format!("expected ',' or '}}', got {:?}", char::from(c))),
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err("trailing bytes after object".into());
    }
    Ok(OwnedSpan {
        trace: trace.ok_or("missing key \"trace\"")?,
        span: span.ok_or("missing key \"span\"")?,
        parent: parent.ok_or("missing key \"parent\"")?,
        name: name.ok_or("missing key \"name\"")?,
        lane: lane.ok_or("missing key \"lane\"")?,
        index: index.ok_or("missing key \"index\"")?,
        start: start.ok_or("missing key \"start\"")?,
        end: end.ok_or("missing key \"end\"")?,
        work: work.ok_or("missing key \"work\"")?,
        depth: depth.ok_or("missing key \"depth\"")?,
    })
}

fn set_once<T>(slot: &mut Option<T>, value: T, key: &str) -> Result<(), String> {
    if slot.is_some() {
        return Err(format!("duplicate key {key:?}"));
    }
    *slot = Some(value);
    Ok(())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn next(&mut self) -> Result<u8, String> {
        let b = *self.bytes.get(self.pos).ok_or("unexpected end of line")?;
        self.pos += 1;
        Ok(b)
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        let got = self.next()?;
        if got == want {
            Ok(())
        } else {
            Err(format!(
                "expected {:?}, got {:?}",
                char::from(want),
                char::from(got)
            ))
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(u8::is_ascii_whitespace)
        {
            self.pos += 1;
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next()? {
                b'"' => return Ok(out),
                b'\\' => match self.next()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.next()?;
                            let v = (d as char).to_digit(16).ok_or("bad \\u escape")?;
                            code = code * 16 + v;
                        }
                        out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                    }
                    c => return Err(format!("bad escape \\{}", char::from(c))),
                },
                c if c < 0x20 => return Err("raw control byte in string".into()),
                c => {
                    // Re-assemble UTF-8 multibyte sequences byte-by-byte.
                    let len = match c {
                        0x00..=0x7F => 0,
                        0xC0..=0xDF => 1,
                        0xE0..=0xEF => 2,
                        0xF0..=0xF7 => 3,
                        _ => return Err("invalid UTF-8 in string".into()),
                    };
                    let from = self.pos - 1;
                    for _ in 0..len {
                        self.next()?;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[from..self.pos])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn hex_id(&mut self) -> Result<u64, String> {
        let s = self.string()?;
        if s.is_empty() || s.len() > 16 {
            return Err(format!("bad hex id {s:?}"));
        }
        u64::from_str_radix(&s, 16).map_err(|_| format!("bad hex id {s:?}"))
    }

    fn number(&mut self) -> Result<u64, String> {
        let from = self.pos;
        while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
            self.pos += 1;
        }
        if self.pos == from {
            return Err("expected a number".into());
        }
        std::str::from_utf8(&self.bytes[from..self.pos])
            .expect("digits are ASCII")
            .parse()
            .map_err(|_| "number out of range".into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SpanId, TraceId};
    use pardict_pram::Cost;

    fn rec(trace: u64, span: u64, parent: u64, start: u64) -> SpanRecord {
        SpanRecord {
            trace: TraceId(trace),
            span: SpanId(span),
            parent: SpanId(parent),
            name: "exec",
            lane: Some("batched"),
            index: 2,
            start,
            end: start + 5,
            cost: Cost { work: 10, depth: 3 },
        }
    }

    #[test]
    fn export_parse_round_trip() {
        let spans = vec![rec(2, 20, 0, 7), rec(1, 10, 0, 1), rec(1, 11, 10, 2)];
        let text = export_jsonl(&spans);
        let parsed = parse_jsonl(&text).unwrap();
        // Canonical order: trace 1 before trace 2, starts ascending.
        assert_eq!(parsed.len(), 3);
        assert_eq!((parsed[0].trace, parsed[0].span), (1, 10));
        assert_eq!((parsed[1].trace, parsed[1].span), (1, 11));
        assert_eq!((parsed[2].trace, parsed[2].span), (2, 20));
        assert_eq!(parsed[1].parent, 10);
        assert_eq!(parsed[0].work, 10);
        assert_eq!(parsed[0].lane, "batched");
    }

    #[test]
    fn export_is_order_independent() {
        let a = vec![rec(1, 10, 0, 1), rec(2, 20, 0, 7)];
        let b = vec![rec(2, 20, 0, 7), rec(1, 10, 0, 1)];
        assert_eq!(export_jsonl(&a), export_jsonl(&b));
    }

    #[test]
    fn malformed_lines_are_rejected() {
        for bad in [
            "not json",
            "{\"trace\":\"1\"}",
            "{\"trace\":\"zz\",\"span\":\"1\",\"parent\":\"0\",\"name\":\"a\",\"lane\":\"\",\"index\":0,\"start\":0,\"end\":1,\"work\":0,\"depth\":0}",
            "{\"trace\":\"1\",\"trace\":\"1\"}",
            "{\"trace\":\"1\",\"span\":\"1\",\"parent\":\"0\",\"name\":\"a\",\"lane\":\"\",\"index\":0,\"start\":5,\"end\":1,\"work\":0,\"depth\":0}",
            "{\"trace\":\"1\",\"span\":\"1\",\"parent\":\"0\",\"name\":\"a\",\"lane\":\"\",\"index\":0,\"start\":0,\"end\":1,\"work\":0,\"depth\":0} x",
            "",
        ] {
            assert!(parse_jsonl(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parser_accepts_any_key_order_and_escapes() {
        let line = "{\"depth\":1,\"work\":2,\"end\":9,\"start\":3,\"index\":0,\
                    \"lane\":\"\",\"name\":\"a\\\"b\\u0041\",\"parent\":\"0\",\
                    \"span\":\"a\",\"trace\":\"f\"}";
        let parsed = parse_jsonl(line).unwrap();
        assert_eq!(parsed[0].name, "a\"bA");
        assert_eq!(parsed[0].span, 10);
        assert_eq!(parsed[0].trace, 15);
    }
}
