#![warn(missing_docs)]

//! # pardict-trace — ledger-correlated structured tracing
//!
//! The paper's cost model is the CRCW-PRAM work/depth ledger, and the
//! workspace meters it exactly ([`pardict_pram::Ledger`]) — but until now
//! that signal died at crate boundaries: the service and cluster metrics
//! only expose flat counters and histograms, so "where did this one slow
//! `grepz` spend its time across router → shard → block waves?" had no
//! answer. This crate makes the ledger observable *per request*:
//!
//! * **Spans** — [`SpanRecord`]: a named interval in a monotonic clock with
//!   a [`TraceId`], a [`SpanId`], a parent link, an optional execution-lane
//!   label, and the PRAM [`Cost`] the span accounts for.
//! * **Collection** — a lock-free bounded ring ([`collector::Collector`],
//!   Vyukov MPMC) that never blocks the hot path: when full, spans are
//!   dropped and counted, not waited on.
//! * **Sampling** — deterministic seeded head-sampling: a trace is kept iff
//!   `mix(trace_id ^ seed) % sample_one_in == 0`, decided once at the root
//!   and propagated, so a sampled request is traced on *every* hop.
//! * **Determinism** — with [`TraceConfig::deterministic`] the clock is a
//!   logical tick counter and all ids derive from the seed, so a seeded
//!   single-threaded run exports byte-identical JSONL every time (the same
//!   discipline as the chaos report and cluster selftest).
//! * **Export** — canonical JSONL ([`export`]) plus a parser and a text
//!   viewer ([`view`]) used by `pardict trace <file>`.
//!
//! Instrumented code never takes a hard dependency on a tracer being
//! present: the engine threads an `Option<Arc<Tracer>>`, and leaf stages
//! (stream/search waves, store recovery) use the *ambient scope*
//! ([`with_scope`] / [`scoped_span`]) which is a no-op unless an enclosing
//! caller installed a tracer on the current thread.

pub mod collector;
pub mod export;
pub mod view;

use collector::Collector;
use pardict_pram::Cost;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Identifies one end-to-end request across every hop it touches.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

/// Identifies one span within a trace. `SpanId(0)` is reserved for "no
/// span" (the parent of a root span).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

/// The propagatable part of a trace: which trace, and which span new work
/// should hang under. `Copy` so it can ride in requests and wire frames.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceCtx {
    /// The trace this context belongs to.
    pub trace: TraceId,
    /// The span a child started from this context will nest under.
    pub parent: SpanId,
}

/// One finished span. `start`/`end` are monotonic clock readings (logical
/// ticks in deterministic mode, microseconds since tracer creation
/// otherwise); `cost` is the PRAM work/depth the span accounts for,
/// inclusive of its children.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Trace this span belongs to.
    pub trace: TraceId,
    /// This span's id.
    pub span: SpanId,
    /// Parent span id; `SpanId(0)` for roots.
    pub parent: SpanId,
    /// Stage name (static, from the instrumentation site).
    pub name: &'static str,
    /// Execution lane label, if the stage has one (service lanes).
    pub lane: Option<&'static str>,
    /// Site-chosen disambiguator: wave index, shard, attempt number.
    pub index: u64,
    /// Start reading of the tracer clock.
    pub start: u64,
    /// End reading of the tracer clock.
    pub end: u64,
    /// PRAM cost attributed to this span (inclusive of children).
    pub cost: Cost,
}

/// Tracer configuration.
#[derive(Clone, Copy, Debug)]
pub struct TraceConfig {
    /// Head-sampling rate: keep one trace in this many. `0` and `1` both
    /// mean "keep every trace".
    pub sample_one_in: u32,
    /// Seed for trace-id derivation and the sampling decision. Two runs
    /// with the same seed sample the same requests.
    pub seed: u64,
    /// Ring-buffer capacity (rounded up to a power of two). Spans beyond
    /// this are dropped and counted, never blocked on.
    pub capacity: usize,
    /// Use a logical tick clock instead of wall micros, making seeded
    /// single-threaded runs byte-identical.
    pub deterministic: bool,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            sample_one_in: 1,
            seed: 0,
            capacity: 1 << 14,
            deterministic: false,
        }
    }
}

/// The tracing runtime: clock, sampler, and span collector. Shared as an
/// `Arc` between every instrumented component of one process.
pub struct Tracer {
    cfg: TraceConfig,
    ring: Collector,
    seq: AtomicU64,
    ticks: AtomicU64,
    epoch: Instant,
}

/// SplitMix64 finalizer — the workspace's standard bit mixer.
#[must_use]
pub fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn fnv(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Deterministic span-id derivation: same (trace, parent, name, index)
/// always yields the same id, so two runs of a seeded workload produce
/// identical trees.
fn derive_span(ctx: TraceCtx, name: &'static str, index: u64) -> SpanId {
    let h = mix(ctx.trace.0
        ^ ctx.parent.0.rotate_left(29)
        ^ fnv(name)
        ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    SpanId(if h == 0 { 1 } else { h })
}

impl Tracer {
    /// Build a tracer behind an `Arc`, ready to share across threads.
    #[must_use]
    pub fn new(cfg: TraceConfig) -> Arc<Self> {
        Arc::new(Self {
            ring: Collector::new(cfg.capacity),
            cfg,
            seq: AtomicU64::new(0),
            ticks: AtomicU64::new(0),
            epoch: Instant::now(),
        })
    }

    /// The configuration this tracer was built with.
    #[must_use]
    pub fn config(&self) -> &TraceConfig {
        &self.cfg
    }

    /// Current clock reading: a fresh logical tick in deterministic mode,
    /// microseconds since tracer creation otherwise.
    #[must_use]
    pub fn now(&self) -> u64 {
        if self.cfg.deterministic {
            self.ticks.fetch_add(1, Ordering::Relaxed) + 1
        } else {
            u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
        }
    }

    /// Allocate a new trace id and apply the head-sampling decision.
    /// `None` means the trace is not sampled — callers propagate the
    /// `None` and no span anywhere records anything for this request.
    #[must_use]
    pub fn begin_trace(&self) -> Option<TraceCtx> {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let trace = mix(self.cfg.seed ^ mix(seq.wrapping_add(1)));
        let trace = if trace == 0 { 1 } else { trace };
        let sampled = self.cfg.sample_one_in <= 1
            || mix(trace ^ self.cfg.seed).is_multiple_of(u64::from(self.cfg.sample_one_in));
        sampled.then_some(TraceCtx {
            trace: TraceId(trace),
            parent: SpanId(0),
        })
    }

    /// Start a span under `ctx`, stamping its start time now.
    pub fn start(&self, ctx: TraceCtx, name: &'static str, index: u64) -> SpanGuard<'_> {
        let now = self.now();
        self.start_at(ctx, name, index, now)
    }

    /// Start a span whose start time was captured earlier (e.g. at queue
    /// admission) than the guard could be constructed.
    pub fn start_at(
        &self,
        ctx: TraceCtx,
        name: &'static str,
        index: u64,
        start: u64,
    ) -> SpanGuard<'_> {
        let span = derive_span(ctx, name, index);
        SpanGuard {
            tracer: self,
            rec: Some(SpanRecord {
                trace: ctx.trace,
                span,
                parent: ctx.parent,
                name,
                lane: None,
                index,
                start,
                end: start,
                cost: Cost::default(),
            }),
        }
    }

    /// Push a finished span into the collector. Never blocks: a full ring
    /// drops the span and bumps the drop counter.
    pub fn record(&self, rec: SpanRecord) {
        self.ring.push(rec);
    }

    /// Drain every collected span (unordered; [`export::export_jsonl`]
    /// sorts canonically).
    #[must_use]
    pub fn drain(&self) -> Vec<SpanRecord> {
        self.ring.drain()
    }

    /// How many spans were dropped because the ring was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.ring.dropped()
    }
}

/// An in-flight span. Finishing (or dropping) the guard stamps the end
/// time and records the span; [`SpanGuard::ctx`] is the context children
/// nest under.
pub struct SpanGuard<'t> {
    tracer: &'t Tracer,
    rec: Option<SpanRecord>,
}

impl SpanGuard<'_> {
    /// Context for children of this span.
    #[must_use]
    pub fn ctx(&self) -> TraceCtx {
        let rec = self.rec.as_ref().expect("span not yet finished");
        TraceCtx {
            trace: rec.trace,
            parent: rec.span,
        }
    }

    /// This span's id.
    #[must_use]
    pub fn id(&self) -> SpanId {
        self.rec.as_ref().expect("span not yet finished").span
    }

    /// Label the execution lane this span ran on.
    pub fn set_lane(&mut self, lane: &'static str) {
        if let Some(r) = self.rec.as_mut() {
            r.lane = Some(lane);
        }
    }

    /// Finish with an attributed PRAM cost.
    pub fn finish(mut self, cost: Cost) {
        if let Some(mut r) = self.rec.take() {
            r.cost = cost;
            r.end = self.tracer.now();
            self.tracer.record(r);
        }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(mut r) = self.rec.take() {
            r.end = self.tracer.now();
            self.tracer.record(r);
        }
    }
}

// ---------------------------------------------------------------------------
// Ambient scope: lets leaf stages (stream/search waves, store recovery)
// emit spans without threading a tracer through their signatures.
// ---------------------------------------------------------------------------

thread_local! {
    static SCOPE: RefCell<Vec<(Arc<Tracer>, TraceCtx)>> = const { RefCell::new(Vec::new()) };
}

struct ScopePop;

impl Drop for ScopePop {
    fn drop(&mut self) {
        SCOPE.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// Run `f` with `(tracer, ctx)` installed as the current thread's ambient
/// trace scope; [`scoped_span`] calls inside `f` (on this thread) nest
/// under `ctx`. Scopes stack and unwind correctly on panic.
pub fn with_scope<R>(tracer: &Arc<Tracer>, ctx: TraceCtx, f: impl FnOnce() -> R) -> R {
    SCOPE.with(|s| s.borrow_mut().push((Arc::clone(tracer), ctx)));
    let _pop = ScopePop;
    f()
}

/// A span started from the ambient scope — inert (zero-allocation no-op)
/// when no scope is installed on the current thread.
pub struct ScopedSpan {
    inner: Option<(Arc<Tracer>, SpanRecord)>,
}

/// Start a span under the current thread's ambient scope, if any.
#[must_use]
pub fn scoped_span(name: &'static str, index: u64) -> ScopedSpan {
    let inner = SCOPE
        .with(|s| s.borrow().last().cloned())
        .map(|(tracer, ctx)| {
            let start = tracer.now();
            let span = derive_span(ctx, name, index);
            let rec = SpanRecord {
                trace: ctx.trace,
                span,
                parent: ctx.parent,
                name,
                lane: None,
                index,
                start,
                end: start,
                cost: Cost::default(),
            };
            (tracer, rec)
        });
    ScopedSpan { inner }
}

impl ScopedSpan {
    /// Whether an ambient scope was present (the span will record).
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }

    /// Finish with an attributed PRAM cost.
    pub fn finish(mut self, cost: Cost) {
        if let Some((tracer, mut rec)) = self.inner.take() {
            rec.cost = cost;
            rec.end = tracer.now();
            tracer.record(rec);
        }
    }
}

impl Drop for ScopedSpan {
    fn drop(&mut self) {
        if let Some((tracer, mut rec)) = self.inner.take() {
            rec.end = tracer.now();
            tracer.record(rec);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det(sample_one_in: u32, seed: u64) -> Arc<Tracer> {
        Tracer::new(TraceConfig {
            sample_one_in,
            seed,
            capacity: 1 << 10,
            deterministic: true,
        })
    }

    #[test]
    fn sampling_is_deterministic_and_roughly_proportional() {
        let a = det(4, 42);
        let b = det(4, 42);
        let kept_a: Vec<bool> = (0..256).map(|_| a.begin_trace().is_some()).collect();
        let kept_b: Vec<bool> = (0..256).map(|_| b.begin_trace().is_some()).collect();
        assert_eq!(kept_a, kept_b, "same seed, same sampling decisions");
        let kept = kept_a.iter().filter(|k| **k).count();
        assert!((16..=112).contains(&kept), "1-in-4 of 256 kept {kept}");
        // sample_one_in 0 and 1 both keep everything.
        assert!(det(0, 7).begin_trace().is_some());
        assert!(det(1, 7).begin_trace().is_some());
    }

    #[test]
    fn span_ids_derive_deterministically() {
        let t = det(1, 9);
        let ctx = t.begin_trace().unwrap();
        let a = t.start(ctx, "work", 3);
        let b = t.start(ctx, "work", 3);
        assert_eq!(a.id(), b.id());
        let c = t.start(ctx, "work", 4);
        assert_ne!(a.id(), c.id());
        let d = t.start(ctx, "other", 3);
        assert_ne!(a.id(), d.id());
    }

    #[test]
    fn guard_records_on_finish_and_on_drop() {
        let t = det(1, 1);
        let ctx = t.begin_trace().unwrap();
        let mut g = t.start(ctx, "a", 0);
        g.set_lane("batched");
        g.finish(Cost { work: 5, depth: 2 });
        {
            let _g2 = t.start(ctx, "b", 0);
        } // drop path
        let mut spans = t.drain();
        spans.sort_by_key(|s| s.start);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "a");
        assert_eq!(spans[0].lane, Some("batched"));
        assert_eq!(spans[0].cost, Cost { work: 5, depth: 2 });
        assert_eq!(spans[1].name, "b");
        assert_eq!(spans[1].cost, Cost::default());
        assert!(spans.iter().all(|s| s.end >= s.start));
    }

    #[test]
    fn ambient_scope_nests_and_is_noop_without_install() {
        assert!(!scoped_span("wave", 0).is_active());
        let t = det(1, 3);
        let ctx = t.begin_trace().unwrap();
        with_scope(&t, ctx, || {
            let s = scoped_span("wave", 7);
            assert!(s.is_active());
            s.finish(Cost { work: 9, depth: 1 });
        });
        assert!(!scoped_span("wave", 1).is_active(), "scope popped");
        let spans = t.drain();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].parent, ctx.parent);
        assert_eq!(spans[0].trace, ctx.trace);
        assert_eq!(spans[0].index, 7);
    }

    #[test]
    fn deterministic_clock_ticks_monotonically() {
        let t = det(1, 0);
        let a = t.now();
        let b = t.now();
        let c = t.now();
        assert!(a < b && b < c);
        assert_eq!(a, 1);
    }
}
