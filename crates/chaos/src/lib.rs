//! `pardict-chaos`: deterministic fault injection and differential
//! verification across the pardict stack.
//!
//! The stack's correctness story so far is built from clean-path tests:
//! compress → decompress round-trips, grep agrees with decompress-then
//! -match, the service answers well-formed requests. This crate attacks
//! the *other* half of the contract — what the stack promises when the
//! bytes are wrong — and pins those promises with oracles instead of
//! hope:
//!
//! - [`plan`] scripts container faults (bit flips, truncation, index and
//!   trailer damage, block reordering, CRC-preserving swaps) from a
//!   [`SplitMix64`](pardict_pram::SplitMix64) seed, each paired with an
//!   *expected-outcome oracle* derived from the PDZS format's documented
//!   guarantees, and [`verify_fault`] checks every oracle differentially
//!   against the clean container: which blocks must appear in
//!   `BlockIssue`s, which bytes must still round-trip, when `.strict()`
//!   must fail fast, and that grep never invents hits the clean text
//!   doesn't have.
//! - [`proxy`] is a `std::net` man-in-the-middle that sabotages live
//!   connections — malformed frames, oversized and truncated length
//!   prefixes, mid-request disconnects, slow-drip writes — while the
//!   server must answer errors, drop only the broken connection, keep
//!   every healthy connection correct, and account for every accepted
//!   request in its metrics.
//! - [`store`] is the storage fault engine: scripted damage to a
//!   `pardict-store` data directory — torn final records, bit flips in
//!   framed WAL records, truncated snapshots, stale compaction temp
//!   files — each recovery verified differentially against a model of
//!   the clean history (drop exactly the untrusted suffix, report what
//!   was dropped, never panic, never invent state).
//! - [`audit`] is the ledger invariant auditor: any metered computation
//!   can be run under both [`Pram::seq`](pardict_pram::Pram::seq) and
//!   [`Pram::par`](pardict_pram::Pram::par) with work ≥ depth, monotone
//!   charges, and identical results *and* costs enforced — the paper's
//!   cost-model sanity bounds as an executable check reusable from any
//!   crate's tests.
//!
//! [`run_chaos`] drives all three from one seed and renders a
//! byte-identical report per seed — symbolic verdict lines only, no
//! ports or timings — so a failing run is reproducible from the seed
//! printed in its header.

#![warn(missing_docs)]

pub mod audit;
pub mod plan;
pub mod proxy;
pub mod report;
pub mod store;

pub use audit::{audit_seq_par, AuditReport, Auditor};
pub use plan::{
    verify_fault, ContainerFault, FaultContext, FaultPlan, ForwardExpect, Oracle, PlannedFault,
};
pub use proxy::{ChaosProxy, ClientFault};
pub use report::{run_chaos, ChaosConfig, ChaosReport};
pub use store::storage_chaos;
