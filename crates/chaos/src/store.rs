//! Storage fault engine: scripted damage to a `pardict-store` data
//! directory, verified differentially against a clean copy.
//!
//! The store's contract is the same skip-and-report discipline the
//! container format promises, lifted to the log level: arbitrary bytes
//! in the data directory must never panic recovery, damage must shrink
//! the recovered state to exactly the trusted prefix, and everything
//! dropped must be described in the [`RecoveryReport`]. This module
//! scripts one fault per class from the master seed and checks each
//! against a model built from the clean history:
//!
//! - **torn-mid-delta** — the tail of `wal.log` is chopped mid-record,
//!   and the final record is a `Delta` (a crash during the last delta
//!   publish). Recovery must drop exactly that delta — the dictionary
//!   stays at its pre-delta state — report the tear, and leave a
//!   directory whose *next* open is clean (the untrusted suffix is
//!   truncated away, not re-reported).
//! - **wal-record-bit-flip** — one bit flips inside a framed record
//!   (disk rot). The CRC must reject it; recovered state is the prefix
//!   before the flipped record, nothing invented, nothing past it.
//! - **truncated-snapshot** — `snapshot.pds` loses its tail (a crash
//!   that somehow survived the atomic rename, or external truncation).
//!   The all-or-nothing snapshot check must reject it and recovery must
//!   fall back to replaying the WAL alone from an empty state — which
//!   also orphans the tail's delta record (its dictionary lived only in
//!   the snapshot); the orphan must be dropped and counted, never
//!   applied to nothing.
//! - **stale-temp-leftover** — a `snapshot.pds.tmp` from a crashed
//!   compaction lingers. Recovery must delete it, count the open as
//!   clean, and recover the full state.
//!
//! Every oracle compares the recovered dictionary map against a model
//! replayed in memory from the publishes the clean store performed — a
//! differential check, not a re-derivation from the damaged bytes.
//!
//! [`RecoveryReport`]: pardict_store::RecoveryReport

use std::collections::BTreeMap;
use std::fs::{self, OpenOptions};
use std::path::{Path, PathBuf};

use pardict_pram::SplitMix64;
use pardict_store::{scan_wal, Store, StoreConfig, SNAPSHOT_FILE, SNAPSHOT_TMP, WAL_FILE};

/// Name → (version, patterns): the comparable shape of a store's state.
type Model = BTreeMap<String, (u64, Vec<Vec<u8>>)>;

fn state_of(store: &Store) -> Model {
    store
        .dicts()
        .map(|(n, d)| (n.to_string(), (d.version, d.patterns.clone())))
        .collect()
}

/// No auto-compaction, no fsync — the engine controls compaction points
/// explicitly and durability is not what these faults test.
fn cfg() -> StoreConfig {
    StoreConfig {
        snapshot_every: 0,
        sync: false,
    }
}

fn copy_dir(src: &Path, dst: &Path) -> std::io::Result<()> {
    fs::create_dir_all(dst)?;
    for f in [WAL_FILE, SNAPSHOT_FILE] {
        if src.join(f).exists() {
            fs::copy(src.join(f), dst.join(f))?;
        }
    }
    Ok(())
}

fn chop(path: &Path, bytes: u64) -> std::io::Result<()> {
    let len = fs::metadata(path)?.len();
    OpenOptions::new()
        .write(true)
        .open(path)?
        .set_len(len.saturating_sub(bytes))
}

fn flip_bit(path: &Path, byte: usize, bit: u32) -> std::io::Result<()> {
    let mut data = fs::read(path)?;
    data[byte] ^= 1 << bit;
    fs::write(path, data)
}

/// A deterministic small pattern set cut from the seed stream.
fn patterns(rng: &mut SplitMix64) -> Vec<Vec<u8>> {
    let k = 2 + rng.next_below(3) as usize;
    (0..k)
        .map(|_| {
            let len = 3 + rng.next_below(6) as usize;
            (0..len)
                .map(|_| b'a' + u8::try_from(rng.next_below(26)).unwrap_or(0))
                .collect()
        })
        .collect()
}

/// Check helper matching the report idiom: `[ok] label` on success,
/// `[VIOLATED] label: why` on failure.
fn verdict(lines: &mut Vec<String>, label: &str, result: Result<(), String>) {
    match result {
        Ok(()) => lines.push(format!("  [ok] {label}")),
        Err(why) => lines.push(format!("  [VIOLATED] {label}: {why}")),
    }
}

fn expect_state(store: &Store, want: &Model) -> Result<(), String> {
    let got = state_of(store);
    if &got == want {
        Ok(())
    } else {
        let got_names: Vec<&String> = got.keys().collect();
        let want_names: Vec<&String> = want.keys().collect();
        Err(format!(
            "recovered {got_names:?}, model says {want_names:?} (or contents differ)"
        ))
    }
}

/// Run the storage fault section: build a clean store (snapshot plus a
/// three-record WAL tail), damage seeded copies of it one fault class at
/// a time, and verify each recovery against the in-memory model. Lines
/// are symbolic (fault names, record indexes, byte counts derived from
/// the seed) — never paths — so equal seeds render equal bytes.
pub fn storage_chaos(seed: u64, lines: &mut Vec<String>) {
    lines.push("storage: scripted damage to a data directory, checked against a clean copy".into());
    let base = std::env::temp_dir().join(format!(
        "pardict-chaos-store-{seed:016x}-{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&base);
    if let Err(e) = fs::create_dir_all(&base) {
        lines.push(format!("  [VIOLATED] scratch dir: {e}"));
        return;
    }
    run_faults(seed, &base, lines);
    let _ = fs::remove_dir_all(&base);
}

#[allow(clippy::too_many_lines)]
fn run_faults(seed: u64, base: &Path, lines: &mut Vec<String>) {
    let mut rng = SplitMix64::new(seed ^ 0x5704_4A6E_0001);
    let clean = base.join("clean");

    // ---- build the clean history and its in-memory model ----
    // Snapshot covers d0..d3 v1; the WAL tail then publishes d4,
    // retires d1, republishes d0 at v2, and delta-publishes d2 to v2 —
    // so each prefix of the tail is a distinct, known state, and the
    // final record exercises the delta kind.
    let mut model_snapshot: Model = BTreeMap::new();
    let mut tail_models: Vec<Model> = Vec::new();
    {
        let mut s = match Store::open(&clean, cfg()) {
            Ok(s) => s,
            Err(e) => {
                lines.push(format!("  [VIOLATED] open clean store: {e}"));
                return;
            }
        };
        let step = |s: &mut Store,
                    lines: &mut Vec<String>,
                    op: &dyn Fn(&mut Store) -> Result<u64, pardict_store::StoreError>|
         -> bool {
            match op(s) {
                Ok(_) => true,
                Err(e) => {
                    lines.push(format!("  [VIOLATED] clean history append: {e}"));
                    false
                }
            }
        };
        for i in 0..4u64 {
            let pats = patterns(&mut rng);
            let name = format!("d{i}");
            if !step(&mut s, lines, &|s| s.log_publish(&name, 1, &pats)) {
                return;
            }
            model_snapshot.insert(name, (1, pats));
        }
        if let Err(e) = s.compact() {
            lines.push(format!("  [VIOLATED] clean compaction: {e}"));
            return;
        }
        let mut model = model_snapshot.clone();
        tail_models.push(model.clone()); // state before any tail record
        let d4 = patterns(&mut rng);
        if !step(&mut s, lines, &|s| s.log_publish("d4", 1, &d4)) {
            return;
        }
        model.insert("d4".into(), (1, d4));
        tail_models.push(model.clone());
        if !step(&mut s, lines, &|s| s.log_retire("d1")) {
            return;
        }
        model.remove("d1");
        tail_models.push(model.clone());
        let d0v2 = patterns(&mut rng);
        if !step(&mut s, lines, &|s| s.log_publish("d0", 2, &d0v2)) {
            return;
        }
        model.insert("d0".into(), (2, d0v2));
        tail_models.push(model.clone());
        // Delta against a snapshot-resident dictionary: remove d2's
        // first pattern (every occurrence), append fresh ones.
        let d2_pats = model_snapshot
            .get("d2")
            .map(|(_, p)| p.clone())
            .unwrap_or_default();
        let removed = d2_pats[0].clone();
        let adds = patterns(&mut rng);
        if !step(&mut s, lines, &|s| {
            s.log_delta("d2", 2, &adds, std::slice::from_ref(&removed))
        }) {
            return;
        }
        let mut d2v2: Vec<Vec<u8>> = d2_pats.iter().filter(|p| **p != removed).cloned().collect();
        d2v2.extend(adds.iter().cloned());
        model.insert("d2".into(), (2, d2v2));
        tail_models.push(model.clone());
    }
    let full_model = tail_models.last().cloned().unwrap_or_default();

    // Record boundaries of the clean WAL tail, for aiming the damage.
    let tail_records = match fs::read(clean.join(WAL_FILE)) {
        Ok(bytes) => {
            let scan = scan_wal(&bytes);
            if scan.header_issue.is_some() || scan.torn.is_some() || scan.records.len() != 4 {
                lines.push("  [VIOLATED] clean wal must scan to exactly 4 records".into());
                return;
            }
            scan.records
                .iter()
                .map(|r| (r.offset, r.len))
                .collect::<Vec<_>>()
        }
        Err(e) => {
            lines.push(format!("  [VIOLATED] read clean wal: {e}"));
            return;
        }
    };

    // ---- baseline: the clean directory recovers cleanly ----
    verdict(
        lines,
        "clean directory recovers the full model (4 snapshot dicts + 4 wal records incl. delta)",
        (|| {
            let s = Store::open(&clean, cfg()).map_err(|e| e.to_string())?;
            let r = s.recovery();
            if !r.is_clean() {
                return Err(format!("not clean: {r:?}"));
            }
            if r.orphan_deltas != 0 {
                return Err(format!(
                    "{} orphan deltas on a clean replay",
                    r.orphan_deltas
                ));
            }
            if r.snapshot_dicts != 4 || r.wal_replayed != 4 || r.wal_skipped != 0 {
                return Err(format!(
                    "books off: snapshot {} replayed {} skipped {}",
                    r.snapshot_dicts, r.wal_replayed, r.wal_skipped
                ));
            }
            expect_state(&s, &full_model)
        })(),
    );

    let fault_dir = |tag: &str| -> Result<PathBuf, String> {
        let d = base.join(tag);
        copy_dir(&clean, &d).map_err(|e| e.to_string())?;
        Ok(d)
    };

    // ---- torn-mid-delta ----
    // The final record is the d2 delta: tearing inside it must roll the
    // dictionary back to its pre-delta state, nothing half-applied.
    let (last_off, last_len) = tail_records[3];
    let tear = 1 + rng.next_below(last_len - 1);
    verdict(
        lines,
        &format!("torn-mid-delta: {tear}-byte tear drops only the final delta record"),
        (|| {
            let d = fault_dir("torn")?;
            chop(&d.join(WAL_FILE), tear).map_err(|e| e.to_string())?;
            let s = Store::open(&d, cfg()).map_err(|e| e.to_string())?;
            let r = s.recovery();
            let torn = r.torn.as_ref().ok_or("tear not reported")?;
            if torn.offset != last_off {
                return Err(format!(
                    "torn at offset {}, final record starts at {last_off}",
                    torn.offset
                ));
            }
            if r.wal_replayed != 3 {
                return Err(format!("replayed {}, wanted 3", r.wal_replayed));
            }
            expect_state(&s, &tail_models[3])?;
            drop(s);
            // The tear was truncated away: the next open must be clean
            // and see the same prefix state.
            let s2 = Store::open(&d, cfg()).map_err(|e| e.to_string())?;
            if !s2.recovery().is_clean() {
                return Err("reopen after repair not clean".into());
            }
            expect_state(&s2, &tail_models[3])
        })(),
    );

    // ---- wal-record-bit-flip ----
    let victim = rng.next_below(4) as usize;
    let (v_off, v_len) = tail_records[victim];
    let flip_byte = v_off + rng.next_below(v_len);
    let flip_bit_n = u32::try_from(rng.next_below(8)).unwrap_or(0);
    verdict(
        lines,
        &format!(
            "wal-record-bit-flip: flip in record {victim} yields exactly the prefix before it"
        ),
        (|| {
            let d = fault_dir("bitflip")?;
            flip_bit(
                &d.join(WAL_FILE),
                usize::try_from(flip_byte).map_err(|e| e.to_string())?,
                flip_bit_n,
            )
            .map_err(|e| e.to_string())?;
            let s = Store::open(&d, cfg()).map_err(|e| e.to_string())?;
            let r = s.recovery();
            let torn = r.torn.as_ref().ok_or("flipped record not rejected")?;
            if torn.offset != v_off {
                return Err(format!(
                    "torn at offset {}, flipped record starts at {v_off}",
                    torn.offset
                ));
            }
            if r.wal_replayed != victim as u64 {
                return Err(format!("replayed {}, wanted {victim}", r.wal_replayed));
            }
            expect_state(&s, &tail_models[victim])?;
            drop(s);
            let s2 = Store::open(&d, cfg()).map_err(|e| e.to_string())?;
            if !s2.recovery().is_clean() {
                return Err("reopen after repair not clean".into());
            }
            expect_state(&s2, &tail_models[victim])
        })(),
    );

    // ---- truncated-snapshot ----
    let snap_len = fs::metadata(clean.join(SNAPSHOT_FILE))
        .map(|m| m.len())
        .unwrap_or(0);
    let snap_cut = 1 + rng.next_below(snap_len.saturating_sub(1).max(1));
    verdict(
        lines,
        &format!("truncated-snapshot: {snap_cut}-byte cut rejects the snapshot, wal-only state recovered"),
        (|| {
            let d = fault_dir("snapcut")?;
            chop(&d.join(SNAPSHOT_FILE), snap_cut).map_err(|e| e.to_string())?;
            let s = Store::open(&d, cfg()).map_err(|e| e.to_string())?;
            let r = s.recovery();
            if r.snapshot_issue.is_none() {
                return Err("damaged snapshot accepted".into());
            }
            if r.torn.is_some() {
                return Err("wal reported torn but only the snapshot was cut".into());
            }
            if r.wal_replayed != 4 || r.wal_skipped != 0 {
                return Err(format!(
                    "replayed {} skipped {}, wanted 4 / 0",
                    r.wal_replayed, r.wal_skipped
                ));
            }
            // Replay of the tail alone onto nothing: d4 appears, the
            // retire of d1 is a no-op, d0 lands at v2, and the d2 delta
            // is an orphan (d2 lived only in the rejected snapshot) —
            // dropped and counted, never applied to nothing.
            if r.orphan_deltas != 1 {
                return Err(format!(
                    "orphan deltas {}, wanted exactly 1",
                    r.orphan_deltas
                ));
            }
            let mut wal_only: Model = BTreeMap::new();
            for (name, v) in &full_model {
                if name == "d4" || name == "d0" {
                    wal_only.insert(name.clone(), v.clone());
                }
            }
            expect_state(&s, &wal_only)
        })(),
    );

    // ---- stale-temp-leftover ----
    let junk_len = 8 + rng.next_below(64) as usize;
    let junk: Vec<u8> = (0..junk_len)
        .map(|_| u8::try_from(rng.next_below(256)).unwrap_or(0))
        .collect();
    verdict(
        lines,
        &format!("stale-temp-leftover: {junk_len}-byte temp removed, full state intact"),
        (|| {
            let d = fault_dir("staletmp")?;
            fs::write(d.join(SNAPSHOT_TMP), &junk).map_err(|e| e.to_string())?;
            let s = Store::open(&d, cfg()).map_err(|e| e.to_string())?;
            let r = s.recovery();
            if !r.stale_temp_removed {
                return Err("stale temp not reported removed".into());
            }
            if !r.is_clean() {
                return Err("stale temp must not dirty the recovery".into());
            }
            if d.join(SNAPSHOT_TMP).exists() {
                return Err("temp file still on disk".into());
            }
            expect_state(&s, &full_model)
        })(),
    );
}
