//! The container fault planner: seeded, scripted mutations of a PDZS
//! container, each paired with an expected-outcome oracle checked
//! differentially against the clean copy.
//!
//! The container format makes precise promises about degradation:
//! metadata damage (footer, trailer, truncation) must be caught
//! *structurally* by [`StreamReader::open`]; payload damage must be
//! caught *per block* by CRC and reported as a [`BlockIssue`] while every
//! other block still round-trips; `.strict()` must turn the first issue
//! into a fail-fast error. The planner derives, for every mutation it
//! scripts, exactly which of those outcomes the format guarantees — and
//! the verifier holds the implementation to it.
//!
//! Two planned faults probe the *limits* of the guarantees on purpose:
//! a record swap leaves the forward decoder a self-consistent (but
//! reordered) stream, and a CRC-preserving swap is invisible to every
//! checksum — the oracle pins down the documented best-effort behavior
//! instead of pretending the format detects what it cannot.

use pardict_core::DictMatcher;
use pardict_pram::{Pram, SplitMix64};
use pardict_search::{grep_container, GrepConfig, GrepHit};
use pardict_stream::layout::ContainerLayout;
use pardict_stream::{
    assemble_container, decompress_stream, RecordHeader, StreamDecompressor, StreamReader,
    HEADER_LEN,
};
use std::collections::BTreeSet;
use std::io::{Cursor, Read};

/// One scripted mutation of a container, parameterized by exact byte
/// targets so a report line reproduces it fully.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContainerFault {
    /// Flip one payload bit of one block.
    PayloadBitFlip {
        /// Target block.
        block: usize,
        /// Byte offset within the payload.
        byte: usize,
        /// Bit position (0–7).
        bit: u8,
    },
    /// Flip several payload bits within a ≤3-byte burst (CRC-32 detects
    /// every burst of ≤32 bits, so the oracle stays exact).
    PayloadBurstFlip {
        /// Target block.
        block: usize,
        /// Byte offset of the burst within the payload.
        byte: usize,
        /// XOR masks for up to three consecutive bytes (first is nonzero).
        mask: [u8; 3],
    },
    /// Flip one bit of a block's inline 13-byte record header.
    RecordHeaderFlip {
        /// Target block.
        block: usize,
        /// Byte offset within the record header (0–12).
        byte: usize,
        /// Bit position (0–7).
        bit: u8,
    },
    /// Truncate the file in the middle of a block record.
    TruncateRecord {
        /// Block whose record the cut lands in.
        block: usize,
        /// Absolute file offset of the cut.
        at: usize,
    },
    /// Truncate the file inside the index footer.
    TruncateIndex {
        /// Absolute file offset of the cut.
        at: usize,
    },
    /// Flip one bit of one index-footer entry.
    FooterFlip {
        /// Footer entry (block) index.
        entry: usize,
        /// Byte offset within the 24-byte entry.
        byte: usize,
        /// Bit position (0–7).
        bit: u8,
    },
    /// Flip one bit of the 24-byte trailer.
    TrailerFlip {
        /// Byte offset within the trailer.
        byte: usize,
        /// Bit position (0–7).
        bit: u8,
    },
    /// Swap the payloads of two blocks with equal compressed length,
    /// leaving both inline headers and the footer untouched.
    PayloadSwap {
        /// First block.
        a: usize,
        /// Second block.
        b: usize,
    },
    /// Swap two whole records (header + payload) without fixing the
    /// footer — block reordering.
    RecordSwap {
        /// First block.
        a: usize,
        /// Second block.
        b: usize,
    },
    /// Swap two blocks' payloads *and* patch every checksum and length to
    /// match — corruption no CRC can see. Both blocks keep their slot's
    /// raw length, so the container stays structurally perfect.
    CrcPreservingSwap {
        /// First block.
        a: usize,
        /// Second block.
        b: usize,
    },
}

impl ContainerFault {
    /// Stable fault-class name for reports.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            ContainerFault::PayloadBitFlip { .. } => "payload-bit-flip",
            ContainerFault::PayloadBurstFlip { .. } => "payload-burst-flip",
            ContainerFault::RecordHeaderFlip { .. } => "record-header-flip",
            ContainerFault::TruncateRecord { .. } => "truncate-record",
            ContainerFault::TruncateIndex { .. } => "truncate-index",
            ContainerFault::FooterFlip { .. } => "index-footer-flip",
            ContainerFault::TrailerFlip { .. } => "trailer-flip",
            ContainerFault::PayloadSwap { .. } => "payload-swap",
            ContainerFault::RecordSwap { .. } => "block-reorder",
            ContainerFault::CrcPreservingSwap { .. } => "crc-preserving-swap",
        }
    }

    /// Stable one-line description (class + exact parameters).
    #[must_use]
    pub fn describe(&self) -> String {
        match self {
            ContainerFault::PayloadBitFlip { block, byte, bit } => {
                format!("payload-bit-flip block={block} byte={byte} bit={bit}")
            }
            ContainerFault::PayloadBurstFlip { block, byte, mask } => format!(
                "payload-burst-flip block={block} byte={byte} mask={:02x}{:02x}{:02x}",
                mask[0], mask[1], mask[2]
            ),
            ContainerFault::RecordHeaderFlip { block, byte, bit } => {
                format!("record-header-flip block={block} byte={byte} bit={bit}")
            }
            ContainerFault::TruncateRecord { block, at } => {
                format!("truncate-record block={block} at={at}")
            }
            ContainerFault::TruncateIndex { at } => format!("truncate-index at={at}"),
            ContainerFault::FooterFlip { entry, byte, bit } => {
                format!("index-footer-flip entry={entry} byte={byte} bit={bit}")
            }
            ContainerFault::TrailerFlip { byte, bit } => {
                format!("trailer-flip byte={byte} bit={bit}")
            }
            ContainerFault::PayloadSwap { a, b } => format!("payload-swap a={a} b={b}"),
            ContainerFault::RecordSwap { a, b } => format!("block-reorder a={a} b={b}"),
            ContainerFault::CrcPreservingSwap { a, b } => {
                format!("crc-preserving-swap a={a} b={b}")
            }
        }
    }

    /// Apply the mutation to a clean container, returning the damaged
    /// bytes. `layout` must describe `container`.
    #[must_use]
    pub fn apply(&self, container: &[u8], layout: &ContainerLayout) -> Vec<u8> {
        let mut out = container.to_vec();
        match *self {
            ContainerFault::PayloadBitFlip { block, byte, bit } => {
                out[layout.records[block].payload.start + byte] ^= 1 << bit;
            }
            ContainerFault::PayloadBurstFlip { block, byte, mask } => {
                let span = layout.records[block].payload.clone();
                for (k, m) in mask.iter().enumerate() {
                    let pos = span.start + byte + k;
                    if pos < span.end {
                        out[pos] ^= m;
                    }
                }
            }
            ContainerFault::RecordHeaderFlip { block, byte, bit } => {
                out[layout.records[block].header.start + byte] ^= 1 << bit;
            }
            ContainerFault::TruncateRecord { at, .. } | ContainerFault::TruncateIndex { at } => {
                out.truncate(at);
            }
            ContainerFault::FooterFlip { entry, byte, bit } => {
                out[layout.footer_entries[entry].start + byte] ^= 1 << bit;
            }
            ContainerFault::TrailerFlip { byte, bit } => {
                out[layout.trailer.start + byte] ^= 1 << bit;
            }
            ContainerFault::PayloadSwap { a, b } => {
                let pa = layout.records[a].payload.clone();
                let pb = layout.records[b].payload.clone();
                let tmp = out[pa.clone()].to_vec();
                let other = out[pb.clone()].to_vec();
                out[pa].copy_from_slice(&other);
                out[pb].copy_from_slice(&tmp);
            }
            ContainerFault::RecordSwap { a, b } => {
                out.truncate(HEADER_LEN);
                for i in 0..layout.num_blocks() {
                    let src = if i == a {
                        b
                    } else if i == b {
                        a
                    } else {
                        i
                    };
                    out.extend_from_slice(&container[layout.records[src].whole()]);
                }
                out.extend_from_slice(&container[layout.end_marker..]);
            }
            ContainerFault::CrcPreservingSwap { a, b } => {
                let mut recs: Vec<(RecordHeader, &[u8])> = layout
                    .records
                    .iter()
                    .map(|r| (r.record, &container[r.payload.clone()]))
                    .collect();
                let (ha, pa) = recs[a];
                let (hb, pb) = recs[b];
                recs[a] = (
                    RecordHeader {
                        raw_len: ha.raw_len,
                        method: hb.method,
                        comp_len: hb.comp_len,
                        crc: hb.crc,
                    },
                    pb,
                );
                recs[b] = (
                    RecordHeader {
                        raw_len: hb.raw_len,
                        method: ha.method,
                        comp_len: ha.comp_len,
                        crc: ha.crc,
                    },
                    pa,
                );
                out = assemble_container(layout.block_size, &recs);
            }
        }
        out
    }
}

/// What the forward (streaming) decoder must do with the damaged bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ForwardExpect {
    /// Full clean round trip, zero issues (damage lives past the end
    /// marker, which the forward decoder never reads).
    CleanFull,
    /// Skips exactly the oracle's issue blocks and emits the survivors.
    SameAsSurvivors,
    /// Aborts with a structural error.
    Fails,
    /// Decodes without issues but emits exactly these (non-clean) bytes —
    /// the documented trust-the-framing behavior.
    Bytes(Vec<u8>),
    /// Framing may cascade unpredictably; the only guarantees are "no
    /// panic" and "never silently emit the clean bytes with zero issues".
    NotSilentlyClean,
}

/// The expected outcome of one fault, derived from the format's contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Oracle {
    /// Must [`StreamReader::open`] succeed on the damaged bytes?
    pub open_ok: bool,
    /// When open succeeds: exactly these blocks must be reported (sorted).
    pub issue_blocks: Vec<usize>,
    /// When open succeeds: exact `read_all` survivor bytes.
    pub survivors: Vec<u8>,
    /// Forward-decoder expectation.
    pub forward: ForwardExpect,
}

/// One fault with its oracle.
#[derive(Debug, Clone)]
pub struct PlannedFault {
    /// The scripted mutation.
    pub fault: ContainerFault,
    /// What the stack must do with it.
    pub oracle: Oracle,
}

/// A seeded script of faults over one container, with oracles.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Structural map of the clean container.
    pub layout: ContainerLayout,
    /// Scripted faults in verification order.
    pub faults: Vec<PlannedFault>,
    /// Fault classes skipped as unplannable on this container, with the
    /// reason (e.g. no two blocks share a compressed length).
    pub skipped: Vec<(&'static str, &'static str)>,
}

/// Everything the verifier needs alongside one fault.
pub struct FaultContext<'a> {
    /// Context to decode on.
    pub pram: &'a Pram,
    /// The clean container bytes.
    pub container: &'a [u8],
    /// The clean decoded stream.
    pub clean_raw: &'a [u8],
    /// Layout of `container`.
    pub layout: &'a ContainerLayout,
    /// When present, the compressed-domain grep differential also runs.
    pub matcher: Option<&'a DictMatcher>,
    /// Grep hits on the clean container (ignored without `matcher`).
    pub clean_hits: &'a [GrepHit],
}

impl FaultPlan {
    /// Script one fault of every class against `container` from `seed`.
    ///
    /// Decisions (target blocks, bytes, bits, cut points, swap pairs) are
    /// drawn from a [`SplitMix64`] stream, so equal seeds yield equal
    /// plans. Classes that need an eligible block pair record themselves
    /// in [`FaultPlan::skipped`] when the container has none.
    ///
    /// # Panics
    /// When `layout`/`clean_raw` do not describe `container` (the planner
    /// is meant for clean, just-compressed containers).
    #[must_use]
    pub fn generate(
        seed: u64,
        container: &[u8],
        clean_raw: &[u8],
        layout: &ContainerLayout,
    ) -> FaultPlan {
        let mut rng = SplitMix64::new(seed);
        let n = layout.num_blocks();
        assert!(n > 0, "cannot plan faults against an empty container");
        assert_eq!(
            container.len(),
            layout.trailer.end,
            "layout does not describe the container"
        );
        let mut faults = Vec::new();
        let mut skipped = Vec::new();

        let survivors_without = |blocks: &[usize]| -> Vec<u8> {
            let dead: BTreeSet<usize> = blocks.iter().copied().collect();
            let mut out = Vec::new();
            for i in 0..n {
                if !dead.contains(&i) {
                    out.extend_from_slice(&clean_raw[layout.raw_range(i)]);
                }
            }
            out
        };
        let permuted = |a: usize, b: usize| -> Vec<u8> {
            let mut out = Vec::with_capacity(clean_raw.len());
            for i in 0..n {
                let src = if i == a {
                    b
                } else if i == b {
                    a
                } else {
                    i
                };
                out.extend_from_slice(&clean_raw[layout.raw_range(src)]);
            }
            out
        };
        let pick_block = |rng: &mut SplitMix64| rng.next_below(n as u64) as usize;
        let payload_len = |i: usize| layout.records[i].payload.len();

        // 1. Single payload bit flip: block CRC catches it, the rest of
        // the stream survives.
        let block = pick_block(&mut rng);
        let byte = rng.next_below(payload_len(block) as u64) as usize;
        let bit = rng.next_below(8) as u8;
        faults.push(PlannedFault {
            fault: ContainerFault::PayloadBitFlip { block, byte, bit },
            oracle: Oracle {
                open_ok: true,
                issue_blocks: vec![block],
                survivors: survivors_without(&[block]),
                forward: ForwardExpect::SameAsSurvivors,
            },
        });

        // 2. Multi-bit burst flip (≤24 bits): same contract — CRC-32
        // detects every burst of ≤32 bits.
        let block = pick_block(&mut rng);
        let plen = payload_len(block);
        let byte = rng.next_below(plen.saturating_sub(2).max(1) as u64) as usize;
        let mask = [
            (rng.next_u64() as u8) | 1, // at least one bit flips
            rng.next_u64() as u8,
            rng.next_u64() as u8,
        ];
        faults.push(PlannedFault {
            fault: ContainerFault::PayloadBurstFlip { block, byte, mask },
            oracle: Oracle {
                open_ok: true,
                issue_blocks: vec![block],
                survivors: survivors_without(&[block]),
                forward: ForwardExpect::SameAsSurvivors,
            },
        });

        // 3. Inline record-header flip: the footer is authoritative, so
        // the seekable reader reports a header mismatch on exactly this
        // block; forward framing may cascade (weak oracle by design).
        let block = pick_block(&mut rng);
        let byte = rng.next_below(13) as usize;
        let bit = rng.next_below(8) as u8;
        faults.push(PlannedFault {
            fault: ContainerFault::RecordHeaderFlip { block, byte, bit },
            oracle: Oracle {
                open_ok: true,
                issue_blocks: vec![block],
                survivors: survivors_without(&[block]),
                forward: ForwardExpect::NotSilentlyClean,
            },
        });

        // 4. Truncation inside a block record: structural for both
        // readers.
        let block = pick_block(&mut rng);
        let whole = layout.records[block].whole();
        let at = whole.start + 1 + rng.next_below((whole.end - whole.start - 1) as u64) as usize;
        faults.push(PlannedFault {
            fault: ContainerFault::TruncateRecord { block, at },
            oracle: Oracle {
                open_ok: false,
                issue_blocks: Vec::new(),
                survivors: Vec::new(),
                forward: ForwardExpect::Fails,
            },
        });

        // 5. Truncation inside the index footer: the seekable reader loses
        // its trailer, but all data precedes the cut — the forward decoder
        // must still round-trip everything.
        let at = layout.footer.start
            + 1
            + rng.next_below((layout.footer.len().max(2) - 1) as u64) as usize;
        faults.push(PlannedFault {
            fault: ContainerFault::TruncateIndex { at },
            oracle: Oracle {
                open_ok: false,
                issue_blocks: Vec::new(),
                survivors: Vec::new(),
                forward: ForwardExpect::CleanFull,
            },
        });

        // 6. Index-footer damage: the footer CRC in the trailer catches
        // any flip before a single entry is trusted.
        let entry = pick_block(&mut rng);
        let byte = rng.next_below(24) as usize;
        let bit = rng.next_below(8) as u8;
        faults.push(PlannedFault {
            fault: ContainerFault::FooterFlip { entry, byte, bit },
            oracle: Oracle {
                open_ok: false,
                issue_blocks: Vec::new(),
                survivors: Vec::new(),
                forward: ForwardExpect::CleanFull,
            },
        });

        // 7. Trailer damage: magic, offsets, counts, and footer CRC are
        // each load-bearing; any flip must refuse to open.
        let byte = rng.next_below(24) as usize;
        let bit = rng.next_below(8) as u8;
        faults.push(PlannedFault {
            fault: ContainerFault::TrailerFlip { byte, bit },
            oracle: Oracle {
                open_ok: false,
                issue_blocks: Vec::new(),
                survivors: Vec::new(),
                forward: ForwardExpect::CleanFull,
            },
        });

        // 8. Payload swap between equal-comp-len blocks with different
        // checksums: both blocks fail CRC, everything else survives.
        let swap_pairs: Vec<(usize, usize)> = (0..n)
            .flat_map(|i| (i + 1..n).map(move |j| (i, j)))
            .filter(|&(i, j)| {
                layout.records[i].record.comp_len == layout.records[j].record.comp_len
                    && layout.records[i].record.crc != layout.records[j].record.crc
            })
            .collect();
        if swap_pairs.is_empty() {
            skipped.push((
                "payload-swap",
                "no block pair shares a compressed length with distinct checksums",
            ));
        } else {
            let (a, b) = swap_pairs[rng.next_below(swap_pairs.len() as u64) as usize];
            faults.push(PlannedFault {
                fault: ContainerFault::PayloadSwap { a, b },
                oracle: Oracle {
                    open_ok: true,
                    issue_blocks: vec![a, b],
                    survivors: survivors_without(&[a, b]),
                    forward: ForwardExpect::SameAsSurvivors,
                },
            });
        }

        // 9. Block reordering: swap two whole records, footer untouched.
        // The footer stays self-consistent, so `open` succeeds no matter
        // what the records hold — validation never reads them. With
        // equal-size records the damage is fully predictable: both slots'
        // inline headers contradict their footer entries (distinct CRCs),
        // exactly [a, b] land in the issue list, and the forward decoder
        // — which trusts the (self-consistent) inline framing — emits
        // permuted bytes. Unequal-size swaps shift every record between
        // the two slots, so which intermediate offsets happen to parse as
        // headers is not format-determined; the planner only scripts the
        // deterministic shape.
        let reorder_pairs: Vec<(usize, usize)> = (0..n)
            .flat_map(|i| (i + 1..n).map(move |j| (i, j)))
            .filter(|&(i, j)| {
                let (ri, rj) = (layout.records[i].record, layout.records[j].record);
                ri.crc != rj.crc && ri.comp_len == rj.comp_len && ri.raw_len == rj.raw_len
            })
            .collect();
        if reorder_pairs.is_empty() {
            skipped.push((
                "block-reorder",
                "no equal-size record pair with distinct content",
            ));
        } else {
            let (a, b) = reorder_pairs[rng.next_below(reorder_pairs.len() as u64) as usize];
            faults.push(PlannedFault {
                fault: ContainerFault::RecordSwap { a, b },
                oracle: Oracle {
                    open_ok: true,
                    issue_blocks: vec![a, b],
                    survivors: survivors_without(&[a, b]),
                    forward: ForwardExpect::Bytes(permuted(a, b)),
                },
            });
        }

        // 10. CRC-preserving swap between two full (non-final) blocks with
        // different content: every checksum passes and both readers emit
        // transposed data — the documented limit of per-block integrity.
        let crc_pairs: Vec<(usize, usize)> = (0..n.saturating_sub(1))
            .flat_map(|i| (i + 1..n.saturating_sub(1)).map(move |j| (i, j)))
            .filter(|&(i, j)| layout.records[i].record.crc != layout.records[j].record.crc)
            .collect();
        if crc_pairs.is_empty() {
            skipped.push((
                "crc-preserving-swap",
                "needs two distinct non-final blocks with different content",
            ));
        } else {
            let (a, b) = crc_pairs[rng.next_below(crc_pairs.len() as u64) as usize];
            faults.push(PlannedFault {
                fault: ContainerFault::CrcPreservingSwap { a, b },
                oracle: Oracle {
                    open_ok: true,
                    issue_blocks: Vec::new(),
                    survivors: permuted(a, b),
                    forward: ForwardExpect::Bytes(permuted(a, b)),
                },
            });
        }

        FaultPlan {
            layout: layout.clone(),
            faults,
            skipped,
        }
    }
}

/// Apply one planned fault and hold the stack to its oracle.
///
/// Runs the damaged bytes through the seekable reader (`open`,
/// `read_all`), the strict forward decoder, the lenient forward decoder,
/// and — when a matcher is supplied — the compressed-domain grep, checking
/// each against the oracle and differentially against the clean copy.
///
/// Returns a stable one-line verdict for the report.
///
/// # Errors
/// A description of the first violated expectation.
pub fn verify_fault(ctx: &FaultContext<'_>, pf: &PlannedFault) -> Result<String, String> {
    let who = pf.fault.describe();
    let mutated = pf.fault.apply(ctx.container, ctx.layout);
    let o = &pf.oracle;
    let mut outcome = String::new();

    // Seekable reader: structural acceptance, survivors, issues.
    match StreamReader::open(Cursor::new(&mutated[..])) {
        Ok(mut rdr) => {
            if !o.open_ok {
                return Err(format!("{who}: open accepted structurally damaged bytes"));
            }
            let (bytes, issues) = rdr
                .read_all(ctx.pram)
                .map_err(|e| format!("{who}: read_all aborted structurally: {e}"))?;
            let got: Vec<usize> = issues.iter().map(|i| i.index as usize).collect();
            if got != o.issue_blocks {
                return Err(format!(
                    "{who}: reported blocks {got:?}, oracle demands {:?}",
                    o.issue_blocks
                ));
            }
            if bytes != o.survivors {
                return Err(format!(
                    "{who}: survivor bytes diverged ({} vs {} expected)",
                    bytes.len(),
                    o.survivors.len()
                ));
            }
            outcome.push_str(&format!("open=ok issues={got:?}"));
        }
        Err(e) => {
            if o.open_ok {
                return Err(format!("{who}: open rejected recoverable damage: {e}"));
            }
            outcome.push_str(&format!("open=refused ({e})"));
        }
    }

    // Strict forward decode: fail fast on the first issue, tied to the
    // forward expectation (cascading-framing faults are exempt).
    let strict_expect = match &o.forward {
        ForwardExpect::CleanFull | ForwardExpect::Bytes(_) => Some(false),
        ForwardExpect::SameAsSurvivors | ForwardExpect::Fails => Some(true),
        ForwardExpect::NotSilentlyClean => None,
    };
    if let Some(must_fail) = strict_expect {
        let pram = ctx.pram;
        let mut sink = Vec::new();
        let strict_result = StreamDecompressor::new(pram, &mutated[..])
            .strict()
            .read_to_end(&mut sink);
        match (must_fail, strict_result) {
            (true, Ok(_)) => return Err(format!("{who}: strict decode swallowed the damage")),
            (false, Err(e)) => {
                return Err(format!("{who}: strict decode failed on intact blocks: {e}"))
            }
            _ => {}
        }
        outcome.push_str(if must_fail {
            " strict=failfast"
        } else {
            " strict=ok"
        });
    }

    // Lenient forward decode.
    let fwd = decompress_stream(ctx.pram, &mut &mutated[..], Vec::new());
    match (&o.forward, fwd) {
        (ForwardExpect::Fails, Ok(_)) => {
            return Err(format!("{who}: forward decode survived truncation"))
        }
        (ForwardExpect::Fails, Err(_)) => outcome.push_str(" forward=fails"),
        (ForwardExpect::CleanFull, Err(e)) | (ForwardExpect::Bytes(_), Err(e)) => {
            return Err(format!("{who}: forward decode aborted: {e}"))
        }
        (ForwardExpect::CleanFull, Ok((bytes, summary))) => {
            if bytes != ctx.clean_raw || !summary.issues.is_empty() {
                return Err(format!("{who}: forward decode lost data before the cut"));
            }
            outcome.push_str(" forward=clean");
        }
        (ForwardExpect::Bytes(expected), Ok((bytes, summary))) => {
            if &bytes != expected || !summary.issues.is_empty() {
                return Err(format!(
                    "{who}: forward decode diverged from expected bytes"
                ));
            }
            outcome.push_str(" forward=permuted");
        }
        (ForwardExpect::SameAsSurvivors, Err(e)) => {
            return Err(format!("{who}: forward decode aborted: {e}"))
        }
        (ForwardExpect::SameAsSurvivors, Ok((bytes, summary))) => {
            let got: Vec<usize> = summary.issues.iter().map(|i| i.index as usize).collect();
            if got != o.issue_blocks || bytes != o.survivors {
                return Err(format!(
                    "{who}: forward decode reported {got:?}, oracle demands {:?}",
                    o.issue_blocks
                ));
            }
            outcome.push_str(" forward=skips");
        }
        (ForwardExpect::NotSilentlyClean, Err(_)) => outcome.push_str(" forward=fails"),
        (ForwardExpect::NotSilentlyClean, Ok((bytes, summary))) => {
            if bytes == ctx.clean_raw && summary.issues.is_empty() {
                return Err(format!(
                    "{who}: forward decode silently produced clean bytes from damaged framing"
                ));
            }
            outcome.push_str(" forward=degraded");
        }
    }

    // Compressed-domain grep differential: issues match the oracle, every
    // surviving hit exists in the clean hit set.
    if let (Some(matcher), true) = (ctx.matcher, o.open_ok) {
        let mut rdr = StreamReader::open(Cursor::new(&mutated[..]))
            .map_err(|e| format!("{who}: grep reopen failed: {e}"))?;
        let summary = grep_container(ctx.pram, matcher, &mut rdr, &GrepConfig::default())
            .map_err(|e| format!("{who}: grep aborted structurally: {e}"))?;
        let got: BTreeSet<usize> = summary.issues.iter().map(|i| i.index as usize).collect();
        let want: BTreeSet<usize> = o.issue_blocks.iter().copied().collect();
        if got != want {
            return Err(format!(
                "{who}: grep reported blocks {got:?}, oracle demands {want:?}"
            ));
        }
        if o.issue_blocks.is_empty() && o.survivors == ctx.clean_raw {
            // Undamaged data ⇒ grep must agree with the clean run exactly.
            if summary.hits != ctx.clean_hits {
                return Err(format!("{who}: grep hits diverged on undamaged data"));
            }
        } else if !o.issue_blocks.is_empty() {
            let clean: BTreeSet<(u64, u32, u32)> = ctx
                .clean_hits
                .iter()
                .map(|h| (h.pos, h.id, h.len))
                .collect();
            for h in &summary.hits {
                if !clean.contains(&(h.pos, h.id, h.len)) {
                    return Err(format!(
                        "{who}: grep invented hit pos={} id={} len={} absent from clean run",
                        h.pos, h.id, h.len
                    ));
                }
            }
        }
        outcome.push_str(" grep=consistent");
    }

    Ok(format!("{who} -> {outcome}"))
}
