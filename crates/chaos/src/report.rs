//! The deterministic chaos driver: one seed in, one byte-identical
//! report out.
//!
//! [`run_chaos`] composes the three engines into a single run:
//!
//! - **Container rounds** — per round, a seeded corpus is compressed into
//!   a PDZS container, a [`FaultPlan`] scripts one fault per class, and
//!   [`verify_fault`] checks every oracle differentially against the clean
//!   copy. Each round executes under *both* [`Pram::seq`] and
//!   [`Pram::par`] through [`audit_seq_par`], so the ledger invariant
//!   auditor rides along with every container check.
//! - **Storage faults** — a clean `pardict-store` data directory is
//!   copied and damaged one fault class at a time (torn mid-delta tail,
//!   WAL bit flip, truncated snapshot with an orphaned delta, stale
//!   compaction temp), each recovery checked against a model of the
//!   clean history ([`storage_chaos`](crate::store::storage_chaos)).
//! - **Wire chaos** — a live [`Server`] behind a [`ChaosProxy`] suffers
//!   malformed frames, oversized and truncated length prefixes,
//!   mid-request disconnects, hostile entry counts, slow-drip writes,
//!   and delta-publish sabotage (torn mid-frame, hostile add counts,
//!   stale parent versions), while a healthy direct connection is
//!   re-verified after every hostile scenario and
//!   [`Metrics::check_accounting`] must balance at the end.
//!
//! Every report line is symbolic — fault names, block indexes, hit counts
//! — never ports, timings, or addresses, so equal seeds produce equal
//! bytes. A failing line starts with `[VIOLATED]` and the final verdict
//! line carries the totals the CLI turns into an exit code.

use std::io::Cursor;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use pardict_core::{dictionary_match, DictMatcher, Dictionary};
use pardict_pram::{Pram, SplitMix64};
use pardict_search::{grep_container, GrepConfig};
use pardict_service::wire::{read_frame, tag, write_frame, WireRequest, WireResponse};
use pardict_service::{Engine, EngineConfig, Hit, Metrics, Registry, Server};
use pardict_stream::layout::ContainerLayout;
use pardict_stream::{compress_stream, StreamConfig, StreamReader};
use pardict_workloads::{markov_text, random_text, repetitive_text, zipf_text, Alphabet};

use crate::audit::audit_seq_par;
use crate::plan::{verify_fault, FaultContext, FaultPlan};
use crate::proxy::{ChaosProxy, ClientFault};

/// Knobs for one chaos run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Master seed; equal seeds produce byte-identical reports.
    pub seed: u64,
    /// Container fault rounds (each gets a fresh corpus and plan).
    pub rounds: usize,
    /// Run the wire-chaos section (needs loopback sockets; tests that
    /// only want container faults can turn it off).
    pub wire: bool,
    /// Run the storage fault section (needs a scratch directory under
    /// the system temp dir).
    pub storage: bool,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        Self {
            seed: 2026,
            rounds: 3,
            wire: true,
            storage: true,
        }
    }
}

/// Outcome of a chaos run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosReport {
    /// The full report, one line per check; byte-identical per seed.
    pub text: String,
    /// Oracles checked (lines tagged `[ok]` or `[VIOLATED]`).
    pub checks: usize,
    /// Oracles violated (lines tagged `[VIOLATED]`).
    pub violations: usize,
}

impl ChaosReport {
    /// `true` when every oracle held.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.violations == 0
    }
}

/// Run the full chaos suite for `cfg` and render the report.
///
/// Never panics on a detected violation — violations become `[VIOLATED]`
/// lines and a nonzero [`ChaosReport::violations`] count, so callers (the
/// CLI, CI) can print the report and exit nonzero.
#[must_use]
pub fn run_chaos(cfg: &ChaosConfig) -> ChaosReport {
    let mut lines = vec![format!(
        "pardict-chaos report (seed {}, rounds {})",
        cfg.seed, cfg.rounds
    )];
    for round in 0..cfg.rounds {
        container_round(cfg.seed, round, &mut lines);
    }
    if cfg.storage {
        crate::store::storage_chaos(cfg.seed, &mut lines);
    }
    if cfg.wire {
        wire_chaos(cfg.seed, &mut lines);
    }
    let checks = lines
        .iter()
        .filter(|l| l.contains("[ok]") || l.contains("[VIOLATED]"))
        .count();
    let violations = lines.iter().filter(|l| l.contains("[VIOLATED]")).count();
    lines.push(format!(
        "verdict: {checks} oracles checked, {violations} violated"
    ));
    ChaosReport {
        text: lines.join("\n") + "\n",
        checks,
        violations,
    }
}

/// Derive the corpus for a round: four workload shapes cycled so every
/// run exercises compressible, repetitive, skewed, and incompressible
/// (stored-block) containers.
fn round_corpus(round: usize, rng: &mut SplitMix64) -> (&'static str, Vec<u8>) {
    let n = 2048 + rng.next_below(2048) as usize;
    let text_seed = rng.next_u64();
    match round % 4 {
        0 => ("markov", markov_text(text_seed, n, Alphabet::lowercase())),
        1 => (
            "repetitive",
            repetitive_text(text_seed, n, Alphabet::lowercase()),
        ),
        2 => ("zipf", zipf_text(text_seed, n, 50, Alphabet::lowercase())),
        _ => ("random", random_text(text_seed, n, Alphabet::sized(255))),
    }
}

/// Deterministic dictionary: a handful of substrings cut from the corpus,
/// so the clean container always has hits to lose when blocks die.
fn round_patterns(corpus: &[u8], rng: &mut SplitMix64) -> Vec<Vec<u8>> {
    let mut patterns: Vec<Vec<u8>> = Vec::new();
    for _ in 0..6 {
        let len = 3 + rng.next_below(4) as usize;
        let start = rng.next_below((corpus.len() - len) as u64) as usize;
        let p = corpus[start..start + len].to_vec();
        if !patterns.contains(&p) {
            patterns.push(p);
        }
    }
    patterns
}

/// One container fault round: corpus → container → plan → verify every
/// fault, executed under both PRAM modes with the ledger auditor.
fn container_round(seed: u64, round: usize, lines: &mut Vec<String>) {
    let round_seed = SplitMix64::new(seed ^ (round as u64)).next_u64();
    let mut rng = SplitMix64::new(round_seed);
    let (shape, corpus) = round_corpus(round, &mut rng);
    let patterns = round_patterns(&corpus, &mut rng);
    let block_size = 256 + rng.next_below(256) as usize;
    let stream_cfg = StreamConfig {
        block_size,
        max_in_flight: 4,
    };
    lines.push(format!(
        "round {round}: {shape} corpus ({} bytes, block size {block_size}, {} patterns)",
        corpus.len(),
        patterns.len()
    ));

    let (container, _) =
        match compress_stream(&Pram::seq(), &mut &corpus[..], Vec::new(), &stream_cfg) {
            Ok(out) => out,
            Err(e) => {
                lines.push(format!("  [VIOLATED] compress clean corpus: {e}"));
                return;
            }
        };
    let layout = match ContainerLayout::parse(&container) {
        Ok(l) => l,
        Err(e) => {
            lines.push(format!("  [VIOLATED] layout of clean container: {e}"));
            return;
        }
    };
    let plan = FaultPlan::generate(round_seed, &container, &corpus, &layout);

    let audited = audit_seq_par(&format!("round {round}"), |pram, auditor| {
        let mut out = Vec::new();
        let matcher = DictMatcher::build(pram, Dictionary::new(patterns.clone()), 0xA5);
        auditor.step(pram, "matcher build");
        let clean_hits = {
            let mut rdr = match StreamReader::open(Cursor::new(&container[..])) {
                Ok(r) => r,
                Err(e) => {
                    out.push(format!("[VIOLATED] clean container must open: {e}"));
                    return out;
                }
            };
            let (bytes, issues) = match rdr.read_all(pram) {
                Ok(r) => r,
                Err(e) => {
                    out.push(format!("[VIOLATED] clean container must decode: {e}"));
                    return out;
                }
            };
            if bytes != corpus || !issues.is_empty() {
                out.push(format!(
                    "[VIOLATED] clean round-trip: {} bytes, {} issues",
                    bytes.len(),
                    issues.len()
                ));
                return out;
            }
            auditor.step(pram, "clean decode");
            match grep_container(pram, &matcher, &mut rdr, &GrepConfig::default()) {
                Ok(s) => s.hits,
                Err(e) => {
                    out.push(format!("[VIOLATED] clean grep must succeed: {e}"));
                    return out;
                }
            }
        };
        auditor.step(pram, "clean grep");
        out.push(format!(
            "[ok] clean container round-trips ({} blocks, {} hits)",
            layout.num_blocks(),
            clean_hits.len()
        ));
        let ctx = FaultContext {
            pram,
            container: &container,
            clean_raw: &corpus,
            layout: &layout,
            matcher: Some(&matcher),
            clean_hits: &clean_hits,
        };
        for pf in &plan.faults {
            match verify_fault(&ctx, pf) {
                Ok(line) => out.push(format!("[ok] {line}")),
                Err(e) => out.push(format!("[VIOLATED] {e}")),
            }
            auditor.step(pram, pf.fault.name());
        }
        out
    });
    match audited {
        Ok((fault_lines, report)) => {
            for l in fault_lines {
                lines.push(format!("  {l}"));
            }
            for (name, why) in &plan.skipped {
                lines.push(format!("  [skip] {name}: {why}"));
            }
            lines.push(format!(
                "  [ok] ledger audit: seq == par (work {}, depth {}, {} checkpoints)",
                report.cost.work, report.cost.depth, report.steps
            ));
        }
        Err(e) => lines.push(format!("  [VIOLATED] ledger audit: {e}")),
    }
}

// ---- wire chaos ----

const WIRE_TIMEOUT: Duration = Duration::from_secs(10);

fn raw_connect(addr: SocketAddr) -> std::io::Result<TcpStream> {
    let s = TcpStream::connect(addr)?;
    s.set_read_timeout(Some(WIRE_TIMEOUT))?;
    s.set_nodelay(true)?;
    Ok(s)
}

/// One request/response exchange over a raw socket; `Ok(None)` means the
/// peer closed without answering.
fn roundtrip(s: &mut TcpStream, req: &WireRequest) -> std::io::Result<Option<WireResponse>> {
    write_frame(s, &req.encode())?;
    match read_frame(s)? {
        None => Ok(None),
        Some(payload) => Ok(Some(WireResponse::decode(&payload)?)),
    }
}

fn match_request(dict: &str, text: &[u8]) -> WireRequest {
    WireRequest::Op {
        tag: tag::MATCH,
        dict: dict.into(),
        text: text.to_vec(),
        timeout_ms: 0,
    }
}

/// Expected hits for the wire baseline, computed against the library
/// directly (longest match per position, like the engine's match lane).
fn library_hits(patterns: &[Vec<u8>], text: &[u8]) -> Vec<(u64, u32)> {
    let dict = Dictionary::new(patterns.to_vec());
    dictionary_match(&Pram::seq(), &dict, text, 0xA5)
        .iter_hits()
        .map(|(i, m)| (i as u64, m.len))
        .collect()
}

fn hit_pairs(hits: &[Hit]) -> Vec<(u64, u32)> {
    hits.iter().map(|h| (h.pos, h.len)).collect()
}

/// The wire-chaos section: hostile clients against a live server, with a
/// healthy connection re-verified after every scenario and the metrics
/// accounting identities checked once the dust settles.
fn wire_chaos(seed: u64, lines: &mut Vec<String>) {
    lines.push("wire: hostile clients against a live server".into());
    let mut rng = SplitMix64::new(seed ^ 0x0005_7A6E_C0DE);
    let text = markov_text(rng.next_u64(), 1500, Alphabet::lowercase());
    let patterns = round_patterns(&text, &mut rng);
    let expected = library_hits(&patterns, &text);

    let metrics = Arc::new(Metrics::default());
    let registry = Arc::new(Registry::new(Arc::clone(&metrics)));
    let engine = Engine::new(
        EngineConfig {
            workers: 2,
            ..EngineConfig::default()
        },
        registry,
        Arc::clone(&metrics),
    );
    let server = match Server::start(engine, "127.0.0.1:0") {
        Ok(s) => s,
        Err(e) => {
            lines.push(format!("  [VIOLATED] server start: {e}"));
            return;
        }
    };
    let mut proxy = match ChaosProxy::start(server.addr()) {
        Ok(p) => p,
        Err(e) => {
            lines.push(format!("  [VIOLATED] proxy start: {e}"));
            return;
        }
    };

    // Everything below records outcomes; an I/O error is itself a verdict.
    let mut engine_ops: u64 = 0;
    run_wire_scenarios(
        &server,
        &proxy,
        &text,
        &patterns,
        &expected,
        &mut engine_ops,
        lines,
    );

    // Quiescent accounting: every accepted request must be accounted for.
    match metrics.check_accounting(true) {
        Ok(()) => lines.push("  [ok] metrics accounting identities hold at quiescence".into()),
        Err(e) => lines.push(format!("  [VIOLATED] metrics accounting: {e}")),
    }
    let (sub, comp) = (metrics.submitted.get(), metrics.completed.get());
    if sub == engine_ops && comp == engine_ops {
        lines.push(format!(
            "  [ok] engine saw exactly the {engine_ops} operations the scenarios sent"
        ));
    } else {
        lines.push(format!(
            "  [VIOLATED] engine op count: submitted {sub}, completed {comp}, expected {engine_ops}"
        ));
    }

    proxy.stop();
    server.engine().shutdown();
}

/// Check helper: push `[ok] label` / `[VIOLATED] label: why`.
fn verdict(lines: &mut Vec<String>, label: &str, result: Result<(), String>) {
    match result {
        Ok(()) => lines.push(format!("  [ok] {label}")),
        Err(why) => lines.push(format!("  [VIOLATED] {label}: {why}")),
    }
}

#[allow(clippy::too_many_lines)]
fn run_wire_scenarios(
    server: &Server,
    proxy: &ChaosProxy,
    text: &[u8],
    patterns: &[Vec<u8>],
    expected: &[(u64, u32)],
    engine_ops: &mut u64,
    lines: &mut Vec<String>,
) {
    let direct = server.addr();

    // The healthy connection that must stay correct throughout.
    let mut healthy = match raw_connect(direct) {
        Ok(s) => s,
        Err(e) => {
            lines.push(format!("  [VIOLATED] healthy connect: {e}"));
            return;
        }
    };
    let publish = WireRequest::Publish {
        name: "chaos".into(),
        patterns: patterns.to_vec(),
    };
    verdict(
        lines,
        "publish dictionary",
        match roundtrip(&mut healthy, &publish) {
            Ok(Some(WireResponse::Published { version: 1, .. })) => Ok(()),
            Ok(other) => Err(format!("unexpected reply {other:?}")),
            Err(e) => Err(e.to_string()),
        },
    );
    let mut healthy_check = |lines: &mut Vec<String>, label: &str, ops: &mut u64| {
        *ops += 1;
        verdict(
            lines,
            label,
            match roundtrip(&mut healthy, &match_request("chaos", text)) {
                Ok(Some(WireResponse::Hits { hits, .. })) => {
                    if hit_pairs(&hits) == expected {
                        Ok(())
                    } else {
                        Err(format!("{} hits, expected {}", hits.len(), expected.len()))
                    }
                }
                Ok(other) => Err(format!("unexpected reply {other:?}")),
                Err(e) => Err(e.to_string()),
            },
        );
    };
    healthy_check(
        lines,
        &format!(
            "baseline match agrees with library ({} hits)",
            expected.len()
        ),
        engine_ops,
    );

    // Scenario 1: malformed frame — error reply, connection survives.
    proxy.push_fault(ClientFault::CorruptTag);
    verdict(
        lines,
        "malformed-frame answered with error, connection kept",
        (|| {
            let mut s = raw_connect(proxy.addr()).map_err(|e| e.to_string())?;
            match roundtrip(&mut s, &WireRequest::Ping).map_err(|e| e.to_string())? {
                Some(WireResponse::Error { .. }) => {}
                other => return Err(format!("wanted error reply, got {other:?}")),
            }
            match roundtrip(&mut s, &WireRequest::Ping).map_err(|e| e.to_string())? {
                Some(WireResponse::Pong) => Ok(()),
                other => Err(format!("wanted pong after error, got {other:?}")),
            }
        })(),
    );
    healthy_check(
        lines,
        "healthy connection correct after malformed-frame",
        engine_ops,
    );

    // Scenario 2: oversized length prefix — connection dropped, no reply.
    proxy.push_fault(ClientFault::OversizeLength);
    verdict(
        lines,
        "oversized-frame dropped without a reply",
        (|| {
            let mut s = raw_connect(proxy.addr()).map_err(|e| e.to_string())?;
            match roundtrip(&mut s, &WireRequest::Ping) {
                Ok(None) | Err(_) => Ok(()),
                Ok(Some(resp)) => Err(format!("server answered an oversized frame: {resp:?}")),
            }
        })(),
    );
    healthy_check(
        lines,
        "healthy connection correct after oversized-frame",
        engine_ops,
    );

    // Scenario 3: mid-request disconnect (half the payload, then gone).
    proxy.push_fault(ClientFault::TruncateMidFrame);
    verdict(
        lines,
        "mid-request-disconnect dropped without a reply",
        (|| {
            let mut s = raw_connect(proxy.addr()).map_err(|e| e.to_string())?;
            match roundtrip(&mut s, &match_request("chaos", text)) {
                Ok(None) | Err(_) => Ok(()),
                Ok(Some(resp)) => Err(format!("server answered a truncated frame: {resp:?}")),
            }
        })(),
    );
    healthy_check(
        lines,
        "healthy connection correct after mid-request-disconnect",
        engine_ops,
    );

    // Scenario 4: truncated length prefix (prefix only, then gone).
    proxy.push_fault(ClientFault::DisconnectAfterPrefix);
    verdict(
        lines,
        "truncated-length-prefix dropped without a reply",
        (|| {
            let mut s = raw_connect(proxy.addr()).map_err(|e| e.to_string())?;
            match roundtrip(&mut s, &WireRequest::Ping) {
                Ok(None) | Err(_) => Ok(()),
                Ok(Some(resp)) => Err(format!("server answered a phantom frame: {resp:?}")),
            }
        })(),
    );
    healthy_check(
        lines,
        "healthy connection correct after truncated-length-prefix",
        engine_ops,
    );

    // Scenario 5: slow drip — byte-at-a-time writes must still be served.
    proxy.push_fault(ClientFault::SlowDrip);
    *engine_ops += 1;
    verdict(
        lines,
        "slow-drip request served correctly",
        (|| {
            let mut s = raw_connect(proxy.addr()).map_err(|e| e.to_string())?;
            match roundtrip(&mut s, &match_request("chaos", text)).map_err(|e| e.to_string())? {
                Some(WireResponse::Hits { hits, .. }) if hit_pairs(&hits) == expected => Ok(()),
                other => Err(format!("wanted the baseline hits, got {other:?}")),
            }
        })(),
    );
    healthy_check(
        lines,
        "healthy connection correct after slow-drip",
        engine_ops,
    );

    // Scenario 6: hostile entry count — a PUBLISH frame claiming u32::MAX
    // patterns in a tiny payload must be refused without allocating, and
    // the connection must keep serving.
    verdict(
        lines,
        "hostile pattern count refused, connection kept",
        (|| {
            let mut s = raw_connect(direct).map_err(|e| e.to_string())?;
            let mut payload = vec![tag::PUBLISH];
            payload.extend_from_slice(&1u32.to_be_bytes());
            payload.push(b'd');
            payload.extend_from_slice(&u32::MAX.to_be_bytes());
            write_frame(&mut s, &payload).map_err(|e| e.to_string())?;
            match read_frame(&mut s).map_err(|e| e.to_string())? {
                Some(p) => match WireResponse::decode(&p).map_err(|e| e.to_string())? {
                    WireResponse::Error { .. } => {}
                    other => return Err(format!("wanted error reply, got {other:?}")),
                },
                None => return Err("connection dropped instead of error reply".into()),
            }
            match roundtrip(&mut s, &WireRequest::Ping).map_err(|e| e.to_string())? {
                Some(WireResponse::Pong) => Ok(()),
                other => Err(format!("wanted pong after error, got {other:?}")),
            }
        })(),
    );
    healthy_check(
        lines,
        "healthy connection correct after hostile pattern count",
        engine_ops,
    );

    // Scenario 7: torn delta publish — a PUBDELTA frame truncated
    // mid-frame must be dropped without a reply, and the dictionary must
    // stay at its parent version: nothing half-applied, no phantom
    // version bump.
    let delta_add = b"chaosdelta".to_vec();
    let delta_req = WireRequest::PubDelta {
        name: "chaos".into(),
        parent_version: 1,
        adds: vec![delta_add.clone()],
        removes: Vec::new(),
    };
    proxy.push_fault(ClientFault::TruncateMidFrame);
    verdict(
        lines,
        "torn delta publish dropped, dictionary stays at parent version",
        (|| {
            let mut s = raw_connect(proxy.addr()).map_err(|e| e.to_string())?;
            match roundtrip(&mut s, &delta_req) {
                Ok(None) | Err(_) => {}
                Ok(Some(resp)) => return Err(format!("server answered a torn delta: {resp:?}")),
            }
            let mut s = raw_connect(direct).map_err(|e| e.to_string())?;
            match roundtrip(&mut s, &WireRequest::Dicts).map_err(|e| e.to_string())? {
                Some(WireResponse::DictList(dicts)) => {
                    match dicts.iter().find(|(n, _, _)| n == "chaos") {
                        Some((_, 1, _)) => Ok(()),
                        Some((_, v, _)) => Err(format!("dictionary advanced to version {v}")),
                        None => Err("dictionary vanished".into()),
                    }
                }
                other => Err(format!("unexpected dicts reply {other:?}")),
            }
        })(),
    );
    healthy_check(
        lines,
        "healthy connection correct after torn delta publish",
        engine_ops,
    );

    // Scenario 8: hostile delta count — a PUBDELTA frame claiming
    // u32::MAX adds in a tiny payload must be refused without
    // allocating, and the connection must keep serving.
    verdict(
        lines,
        "hostile delta count refused, connection kept",
        (|| {
            let mut s = raw_connect(direct).map_err(|e| e.to_string())?;
            let mut payload = vec![tag::PUBDELTA];
            payload.extend_from_slice(&5u32.to_be_bytes());
            payload.extend_from_slice(b"chaos");
            payload.extend_from_slice(&1u64.to_be_bytes());
            payload.extend_from_slice(&u32::MAX.to_be_bytes());
            write_frame(&mut s, &payload).map_err(|e| e.to_string())?;
            match read_frame(&mut s).map_err(|e| e.to_string())? {
                Some(p) => match WireResponse::decode(&p).map_err(|e| e.to_string())? {
                    WireResponse::Error { .. } => {}
                    other => return Err(format!("wanted error reply, got {other:?}")),
                },
                None => return Err("connection dropped instead of error reply".into()),
            }
            match roundtrip(&mut s, &WireRequest::Ping).map_err(|e| e.to_string())? {
                Some(WireResponse::Pong) => Ok(()),
                other => Err(format!("wanted pong after error, got {other:?}")),
            }
        })(),
    );
    healthy_check(
        lines,
        "healthy connection correct after hostile delta count",
        engine_ops,
    );

    // Scenario 9: stale-parent delta — naming a superseded parent
    // version must be refused with an error, never applied.
    verdict(
        lines,
        "stale-parent delta refused, connection kept",
        (|| {
            let mut s = raw_connect(direct).map_err(|e| e.to_string())?;
            let stale = WireRequest::PubDelta {
                name: "chaos".into(),
                parent_version: 999,
                adds: vec![delta_add.clone()],
                removes: Vec::new(),
            };
            match roundtrip(&mut s, &stale).map_err(|e| e.to_string())? {
                Some(WireResponse::Error { .. }) => {}
                other => return Err(format!("wanted error reply, got {other:?}")),
            }
            match roundtrip(&mut s, &WireRequest::Ping).map_err(|e| e.to_string())? {
                Some(WireResponse::Pong) => Ok(()),
                other => Err(format!("wanted pong after error, got {other:?}")),
            }
        })(),
    );
    healthy_check(
        lines,
        "healthy connection correct after stale-parent delta",
        engine_ops,
    );

    // Scenario 10: after the chaos, a well-formed delta publish on a
    // direct connection applies — version 2, and matches against the
    // delta'd dictionary agree with a scratch library build of the
    // final pattern set.
    *engine_ops += 1;
    verdict(
        lines,
        "delta publish applies after wire chaos, matches agree with scratch build",
        (|| {
            let mut finals = patterns.to_vec();
            finals.push(delta_add.clone());
            let expected2 = library_hits(&finals, text);
            let mut s = raw_connect(direct).map_err(|e| e.to_string())?;
            match roundtrip(&mut s, &delta_req).map_err(|e| e.to_string())? {
                Some(WireResponse::Published { version: 2, .. }) => {}
                other => return Err(format!("wanted version 2, got {other:?}")),
            }
            match roundtrip(&mut s, &match_request("chaos", text)).map_err(|e| e.to_string())? {
                Some(WireResponse::Hits { hits, .. }) if hit_pairs(&hits) == expected2 => Ok(()),
                other => Err(format!("wanted the scratch-build hits, got {other:?}")),
            }
        })(),
    );

    // Liveness: a brand-new connection still gets a pong.
    verdict(
        lines,
        "server alive on a fresh connection after all scenarios",
        (|| {
            let mut s = raw_connect(direct).map_err(|e| e.to_string())?;
            match roundtrip(&mut s, &WireRequest::Ping).map_err(|e| e.to_string())? {
                Some(WireResponse::Pong) => Ok(()),
                other => Err(format!("wanted pong, got {other:?}")),
            }
        })(),
    );
}
