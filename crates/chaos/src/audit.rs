//! The ledger invariant auditor: executable documentation of the cost
//! model's contracts, reusable from any crate's tests.
//!
//! The simulator promises three things about every metered run:
//!
//! 1. **Work dominates depth** — depth counts parallel time and work
//!    counts total operations, so a run's cumulative work can never fall
//!    below its cumulative depth (the paper's `W ≥ D` sanity bound).
//! 2. **Mode independence** — [`Pram::seq`] and [`Pram::par`] execute the
//!    same algorithm and charge the same ledger; results *and* costs must
//!    be identical.
//! 3. **Monotone charges** — the ledger only accumulates; observed costs
//!    never regress between super-steps.
//!
//! [`audit_seq_par`] runs a closure under both modes with an [`Auditor`]
//! the closure can checkpoint at super-step boundaries, and reports every
//! violated contract instead of panicking — chaos reports want verdicts,
//! not aborts.

use pardict_pram::{Cost, Pram};
use std::cell::{Cell, RefCell};

/// Checkpoint collector handed to the audited closure; call
/// [`Auditor::step`] at super-step boundaries.
#[derive(Debug, Default)]
pub struct Auditor {
    last: Cell<Cost>,
    steps: Cell<usize>,
    violations: RefCell<Vec<String>>,
}

impl Auditor {
    /// Fresh auditor with no observations.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a super-step boundary: assert the cumulative cost is
    /// monotone since the previous checkpoint and that work ≥ depth.
    pub fn step(&self, pram: &Pram, label: &str) {
        let cost = pram.cost();
        let last = self.last.get();
        if cost.work < last.work || cost.depth < last.depth {
            self.violations.borrow_mut().push(format!(
                "{label}: charges regressed (work {} -> {}, depth {} -> {})",
                last.work, cost.work, last.depth, cost.depth
            ));
        }
        if cost.work < cost.depth {
            self.violations.borrow_mut().push(format!(
                "{label}: work {} below depth {}",
                cost.work, cost.depth
            ));
        }
        self.last.set(cost);
        self.steps.set(self.steps.get() + 1);
    }

    /// Number of checkpoints recorded so far.
    #[must_use]
    pub fn steps(&self) -> usize {
        self.steps.get()
    }
}

/// What a clean audited run cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuditReport {
    /// The (mode-independent) cost of the run.
    pub cost: Cost,
    /// Checkpoints observed per run (closure steps plus the final one).
    pub steps: usize,
}

/// Run `f` under [`Pram::seq`] and [`Pram::par`], checkpointing through
/// the provided [`Auditor`], and verify every ledger contract: identical
/// results, identical costs, work ≥ depth, monotone charges. On success
/// the (mode-independent) result is returned alongside the audit report.
///
/// # Errors
/// A `; `-joined list of every violated contract, prefixed with `label`.
pub fn audit_seq_par<R, F>(label: &str, f: F) -> Result<(R, AuditReport), String>
where
    R: PartialEq + std::fmt::Debug,
    F: Fn(&Pram, &Auditor) -> R,
{
    let run = |pram: &Pram| {
        let auditor = Auditor::new();
        let out = f(pram, &auditor);
        auditor.step(pram, label);
        let steps = auditor.steps();
        (out, pram.cost(), steps, auditor.violations.into_inner())
    };
    let (seq_out, seq_cost, steps, mut violations) = run(&Pram::seq());
    let (par_out, par_cost, _, par_violations) = run(&Pram::par());
    violations.extend(par_violations);
    if seq_out != par_out {
        violations.push(format!("{label}: seq and par results differ"));
    }
    if seq_cost != par_cost {
        violations.push(format!(
            "{label}: seq cost (work {}, depth {}) != par cost (work {}, depth {})",
            seq_cost.work, seq_cost.depth, par_cost.work, par_cost.depth
        ));
    }
    if violations.is_empty() {
        Ok((
            seq_out,
            AuditReport {
                cost: seq_cost,
                steps,
            },
        ))
    } else {
        Err(violations.join("; "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_runs_pass_and_report_cost() {
        let (out, report) = audit_seq_par("tabulate", |pram, auditor| {
            let v = pram.tabulate(100, |i| i * 2);
            auditor.step(pram, "after tabulate");
            let w = pram.map(&v, |_, x| x + 1);
            auditor.step(pram, "after map");
            w
        })
        .expect("clean run must audit clean");
        assert_eq!(out.len(), 100);
        assert!(report.cost.work >= report.cost.depth);
        assert!(report.cost.work > 0);
        assert_eq!(report.steps, 3);
    }

    #[test]
    fn mode_dependent_results_are_caught() {
        use pardict_pram::Mode;
        let err = audit_seq_par("mode leak", |pram, _| match pram.mode() {
            Mode::Seq => 1u32,
            Mode::Par => 2u32,
        })
        .unwrap_err();
        assert!(err.contains("results differ"), "got: {err}");
    }

    #[test]
    fn mode_dependent_costs_are_caught() {
        use pardict_pram::Mode;
        let err = audit_seq_par("cost leak", |pram, _| {
            if pram.mode() == Mode::Par {
                pram.ledger().charge_work(7);
            }
            0u8
        })
        .unwrap_err();
        assert!(err.contains("cost"), "got: {err}");
    }

    #[test]
    fn depth_exceeding_work_is_caught() {
        let err = audit_seq_par("depth heavy", |pram, auditor| {
            pram.ledger().charge_depth(10);
            pram.ledger().charge_work(3);
            auditor.step(pram, "unbalanced");
        })
        .unwrap_err();
        assert!(err.contains("below depth"), "got: {err}");
    }
}
