//! A `std::net` man-in-the-middle for the wire protocol.
//!
//! The proxy sits between a client and a live [`Server`], relaying
//! server→client bytes verbatim while sabotaging the client→server
//! stream according to a per-connection [`ClientFault`]: corrupted tags,
//! oversized or truncated length prefixes, mid-request disconnects, and
//! byte-at-a-time slow-drip writes. The server under test must treat all
//! of it as documented — answer malformed requests with an error frame,
//! drop framing-broken connections without taking anything else down, and
//! keep every healthy connection correct throughout.
//!
//! [`Server`]: pardict_service::Server

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use pardict_service::wire::MAX_FRAME;

/// How the proxy sabotages one client connection's first frame.
/// Subsequent frames on the same connection pass through untouched, so a
/// scenario can verify the connection (when it survives) still works.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientFault {
    /// Relay everything untouched.
    PassThrough,
    /// Overwrite the first frame's tag byte with an unknown tag — a
    /// malformed frame the server must answer with an error response.
    CorruptTag,
    /// Rewrite the first frame's length prefix to exceed `MAX_FRAME` —
    /// the server must refuse and drop the connection, nothing more.
    OversizeLength,
    /// Forward the length prefix and half the payload, then disconnect
    /// mid-request.
    TruncateMidFrame,
    /// Forward only the 4-byte length prefix, then disconnect — a
    /// truncated length-prefix stream.
    DisconnectAfterPrefix,
    /// Forward the first frame one byte at a time, flushing after every
    /// byte — partial writes with flushes; the server must still answer
    /// correctly.
    SlowDrip,
}

impl ClientFault {
    /// Stable scenario name for reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ClientFault::PassThrough => "pass-through",
            ClientFault::CorruptTag => "malformed-frame",
            ClientFault::OversizeLength => "oversized-frame",
            ClientFault::TruncateMidFrame => "mid-request-disconnect",
            ClientFault::DisconnectAfterPrefix => "truncated-length-prefix",
            ClientFault::SlowDrip => "slow-drip",
        }
    }
}

/// A running man-in-the-middle bound to an ephemeral local port.
///
/// Each accepted connection consumes one queued [`ClientFault`]
/// (defaulting to [`ClientFault::PassThrough`]) and relays to the
/// upstream address.
pub struct ChaosProxy {
    addr: SocketAddr,
    faults: Arc<Mutex<VecDeque<ClientFault>>>,
    default_fault: Arc<Mutex<ClientFault>>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Bind an ephemeral port and start proxying to `upstream`.
    ///
    /// # Errors
    /// Socket bind/configuration failures.
    pub fn start(upstream: SocketAddr) -> io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let faults: Arc<Mutex<VecDeque<ClientFault>>> = Arc::default();
        let default_fault = Arc::new(Mutex::new(ClientFault::PassThrough));
        let stop = Arc::new(AtomicBool::new(false));
        let accept_faults = Arc::clone(&faults);
        let accept_default = Arc::clone(&default_fault);
        let accept_stop = Arc::clone(&stop);
        let accept_thread = std::thread::Builder::new()
            .name("pardict-chaos-proxy".into())
            .spawn(move || {
                while !accept_stop.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((client, _)) => {
                            let fault = accept_faults
                                .lock()
                                .expect("fault queue poisoned")
                                .pop_front()
                                .unwrap_or_else(|| {
                                    *accept_default.lock().expect("default fault poisoned")
                                });
                            let _ = std::thread::Builder::new()
                                .name("pardict-chaos-conn".into())
                                .spawn(move || {
                                    let _ = relay(client, upstream, fault);
                                });
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                }
            })
            .expect("spawn proxy accept thread");
        Ok(Self {
            addr,
            faults,
            default_fault,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The proxy's listening address — point clients here.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Queue the fault the *next* accepted connection suffers.
    pub fn push_fault(&self, fault: ClientFault) {
        self.faults
            .lock()
            .expect("fault queue poisoned")
            .push_back(fault);
    }

    /// Set the fault every connection suffers when the queue is empty —
    /// a *persistently* poisoned link, as a router sees when a backend's
    /// network path goes bad (each reconnect attempt is sabotaged anew).
    /// [`Self::push_fault`] entries still take precedence, one each.
    pub fn set_default_fault(&self, fault: ClientFault) {
        *self.default_fault.lock().expect("default fault poisoned") = fault;
    }

    /// Stop accepting new connections (existing relays drain on EOF).
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Read exactly `buf` from `r`; `Ok(false)` on clean EOF before the first
/// byte.
fn read_full(r: &mut impl Read, buf: &mut [u8]) -> io::Result<bool> {
    match r.read_exact(buf) {
        Ok(()) => Ok(true),
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => Ok(false),
        Err(e) => Err(e),
    }
}

fn relay(client: TcpStream, upstream: SocketAddr, fault: ClientFault) -> io::Result<()> {
    let server = TcpStream::connect(upstream)?;
    let mut server_read = server.try_clone()?;
    let mut client_write = client.try_clone()?;

    // Server → client: verbatim.
    let back = std::thread::Builder::new()
        .name("pardict-chaos-back".into())
        .spawn(move || {
            let mut buf = [0u8; 4096];
            loop {
                match server_read.read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => {
                        if client_write.write_all(&buf[..n]).is_err() {
                            break;
                        }
                        let _ = client_write.flush();
                    }
                }
            }
            let _ = client_write.shutdown(Shutdown::Write);
        })
        .expect("spawn back-relay thread");

    // Client → server: frame-aware, sabotaging the first frame.
    let mut client_read = client;
    let mut server_write = server;
    let mut first = true;
    loop {
        let mut len_buf = [0u8; 4];
        if !read_full(&mut client_read, &mut len_buf)? {
            break;
        }
        let len = u32::from_be_bytes(len_buf) as usize;
        let mut payload = vec![0u8; len];
        if !read_full(&mut client_read, &mut payload)? {
            break;
        }
        let active = if first {
            fault
        } else {
            ClientFault::PassThrough
        };
        first = false;
        match active {
            ClientFault::PassThrough => {
                server_write.write_all(&len_buf)?;
                server_write.write_all(&payload)?;
                server_write.flush()?;
            }
            ClientFault::CorruptTag => {
                if let Some(tag) = payload.first_mut() {
                    *tag = 0x7F;
                }
                server_write.write_all(&len_buf)?;
                server_write.write_all(&payload)?;
                server_write.flush()?;
            }
            ClientFault::OversizeLength => {
                server_write.write_all(&(MAX_FRAME + 1).to_be_bytes())?;
                server_write.write_all(&payload)?;
                server_write.flush()?;
            }
            ClientFault::TruncateMidFrame => {
                server_write.write_all(&len_buf)?;
                server_write.write_all(&payload[..len / 2])?;
                server_write.flush()?;
                break;
            }
            ClientFault::DisconnectAfterPrefix => {
                server_write.write_all(&len_buf)?;
                server_write.flush()?;
                break;
            }
            ClientFault::SlowDrip => {
                for b in len_buf.iter().chain(payload.iter()) {
                    server_write.write_all(std::slice::from_ref(b))?;
                    server_write.flush()?;
                }
            }
        }
    }
    let _ = server_write.shutdown(Shutdown::Write);
    let _ = back.join();
    Ok(())
}
