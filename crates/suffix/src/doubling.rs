//! Prefix-doubling suffix array construction (Manber–Myers flavour).
//!
//! The ablation partner for the DC3 route: `O(n log n)` work (a radix sort
//! of rank pairs per doubling round) against DC3's `O(n)`, with a similar
//! `O(log² n)` depth. Experiment E12 plots the two against each other; DC3
//! wins on work exactly as the theory says, which is why it is the default
//! inside [`crate::SuffixTree`].

use pardict_pram::{radix_sort_by_key, Pram};

/// Suffix array by prefix doubling. Same output as
/// [`crate::suffix_array`]; `O(n log n)` work, `O(log² n)` depth.
#[must_use]
pub fn suffix_array_doubling(pram: &Pram, text: &[u8]) -> Vec<u32> {
    let n = text.len();
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![0];
    }

    // Initial ranks = byte values.
    let mut rank: Vec<u32> = pram.map(text, |_, &c| u32::from(c) + 1);
    let mut sa: Vec<u32> = (0..n as u32).collect();
    let mut k = 1usize;

    loop {
        // Sort by (rank[i], rank[i + k]) with two stable radix passes.
        let second = |i: u32| -> u64 {
            let j = i as usize + k;
            if j < n {
                u64::from(rank[j]) + 1
            } else {
                0
            }
        };
        let pass1 = radix_sort_by_key(pram, &sa, |&i| second(i));
        sa = radix_sort_by_key(pram, &pass1, |&i| u64::from(rank[i as usize]));

        // Re-rank: adjacent entries with equal key pairs share a rank.
        let fresh: Vec<u64> = pram.tabulate(n, |t| {
            if t == 0 {
                return 1;
            }
            let (a, b) = (sa[t - 1], sa[t]);
            u64::from(rank[a as usize] != rank[b as usize] || second(a) != second(b))
        });
        let names = pram.scan_inclusive_sum(&fresh);
        let distinct = *names.last().unwrap() as usize;
        let mut new_rank = vec![0u32; n];
        pram.ledger().round(n as u64);
        for t in 0..n {
            new_rank[sa[t] as usize] = names[t] as u32;
        }
        rank = new_rank;
        if distinct == n {
            return sa;
        }
        k *= 2;
        debug_assert!(k < 2 * n, "doubling failed to converge");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sa::{suffix_array, suffix_array_naive};
    use pardict_pram::SplitMix64;

    fn check(text: &[u8]) {
        let pram = Pram::seq();
        assert_eq!(
            suffix_array_doubling(&pram, text),
            suffix_array_naive(text),
            "text={:?}",
            String::from_utf8_lossy(text)
        );
    }

    #[test]
    fn classic_strings() {
        check(b"");
        check(b"a");
        check(b"banana");
        check(b"mississippi");
        check(b"abracadabra");
        check(&[b'a'; 64]);
        check(&b"ab".repeat(33));
    }

    #[test]
    fn agrees_with_dc3_on_random_texts() {
        let pram = Pram::seq();
        let mut rng = SplitMix64::new(14);
        for sigma in [2u64, 4, 26] {
            for n in [37usize, 256, 1500] {
                let text: Vec<u8> = (0..n).map(|_| (rng.next_below(sigma) + 97) as u8).collect();
                assert_eq!(
                    suffix_array_doubling(&pram, &text),
                    suffix_array(&pram, &text),
                    "sigma={sigma} n={n}"
                );
            }
        }
    }

    #[test]
    fn work_is_superlinear_vs_dc3() {
        // The ablation: doubling pays a log-factor in work.
        let mut ratios = Vec::new();
        for n in [1usize << 12, 1 << 15] {
            let mut rng = SplitMix64::new(7);
            let text: Vec<u8> = (0..n).map(|_| (rng.next_below(2) + 97) as u8).collect();
            let p1 = Pram::seq();
            let _ = suffix_array_doubling(&p1, &text);
            let p2 = Pram::seq();
            let _ = suffix_array(&p2, &text);
            ratios.push(p1.cost().work as f64 / p2.cost().work as f64);
        }
        // Radix-pass granularity makes the growth noisy at small sizes;
        // assert the consistent gap here and leave the slope to E12.
        assert!(
            ratios.iter().all(|&r| r > 1.3),
            "doubling should cost noticeably more than DC3: {ratios:?}"
        );
    }
}
