//! Suffix array construction.
//!
//! The paper's Lemma 2.1 cites the Farach–Muthukrishnan randomized
//! `O(log n)`-time, `O(n)`-work suffix tree algorithm. We reach the same
//! object through the DC3/skew suffix-array algorithm [Kärkkäinen–Sanders]
//! expressed in PRAM rounds: each of the `O(log n)` recursion levels is a
//! constant number of radix-sort, scan, and parallel-merge rounds on a
//! two-thirds-sized subproblem, so total work is `O(n)` (geometric series)
//! and depth is `O(log² n)` — a log factor above the paper's bound, which we
//! accept and measure (see DESIGN.md).

use pardict_pram::{radix_sort_by_key, Pram};

/// Suffix array of `text`: the starting positions of all suffixes in
/// lexicographic order. No sentinel is appended (callers that need one,
/// e.g. the suffix tree, add it themselves).
#[must_use]
pub fn suffix_array(pram: &Pram, text: &[u8]) -> Vec<u32> {
    let s: Vec<u32> = pram.map(text, |_, &c| u32::from(c) + 1);
    skew(pram, &s)
}

/// Naive `O(n² log n)` oracle for tests.
#[must_use]
pub fn suffix_array_naive(text: &[u8]) -> Vec<u32> {
    let mut sa: Vec<u32> = (0..text.len() as u32).collect();
    sa.sort_by(|&a, &b| text[a as usize..].cmp(&text[b as usize..]));
    sa
}

/// DC3 over an integer string with values `>= 1`.
fn skew(pram: &Pram, s: &[u32]) -> Vec<u32> {
    let n = s.len();
    match n {
        0 => return Vec::new(),
        1 => return vec![0],
        2 => {
            return if s[..] < s[1..] {
                vec![0, 1]
            } else {
                vec![1, 0]
            };
        }
        _ => {}
    }

    // Padded copy: sp[n..n+3] = 0.
    let mut sp = Vec::with_capacity(n + 3);
    sp.extend_from_slice(s);
    sp.extend_from_slice(&[0, 0, 0]);
    let sp = &sp;

    let n0 = n.div_ceil(3);
    let n1 = (n + 1) / 3;
    let n2 = n / 3;
    let n02 = n0 + n2;

    // Mod-1 and mod-2 positions; when n % 3 == 1 include the padding
    // position n (classic trick: keeps n1 <= n0 aligned).
    let limit = n + (n0 - n1);
    let mut s12: Vec<u32> = Vec::with_capacity(n02);
    for i in 0..limit {
        if i % 3 != 0 {
            s12.push(i as u32);
        }
    }
    pram.ledger().round(n02 as u64);
    debug_assert_eq!(s12.len(), n02);

    // Stable LSD radix over the character triples.
    let s12 = radix_sort_by_key(pram, &s12, |&i| u64::from(sp[i as usize + 2]));
    let s12 = radix_sort_by_key(pram, &s12, |&i| u64::from(sp[i as usize + 1]));
    let s12 = radix_sort_by_key(pram, &s12, |&i| u64::from(sp[i as usize]));

    // Lexicographic names for the triples.
    let triple = |i: u32| -> (u32, u32, u32) {
        let i = i as usize;
        (sp[i], sp[i + 1], sp[i + 2])
    };
    let fresh: Vec<u64> = pram.tabulate(n02, |k| {
        u64::from(k == 0 || triple(s12[k]) != triple(s12[k - 1]))
    });
    let names_inc = pram.scan_inclusive_sum(&fresh);
    let num_names = *names_inc.last().unwrap() as usize;

    // Rank of every mod-1/2 position (1-based names), indexed by position.
    let pos_of = |i: u32| -> usize {
        let i = i as usize;
        if i % 3 == 1 {
            i / 3
        } else {
            i / 3 + n0
        }
    };

    let sa12: Vec<u32> = if num_names == n02 {
        // All triples distinct: the sort order is the suffix order.
        s12
    } else {
        // Recurse on the name string (mod-1 block then mod-2 block).
        let mut r = vec![0u32; n02];
        pram.ledger().round(n02 as u64);
        for k in 0..n02 {
            r[pos_of(s12[k])] = names_inc[k] as u32;
        }
        let sar = skew(pram, &r);
        // Map recursive positions back to text positions.
        pram.map(&sar, |_, &p| {
            let p = p as usize;
            if p < n0 {
                (p * 3 + 1) as u32
            } else {
                ((p - n0) * 3 + 2) as u32
            }
        })
    };

    // rank12[i] for i in sampled positions (+3 padding slots), 0 elsewhere.
    let mut rank12 = vec![0u32; n + 3];
    pram.ledger().round(n02 as u64);
    for (k, &i) in sa12.iter().enumerate() {
        if (i as usize) < n + 3 {
            rank12[i as usize] = k as u32 + 1;
        }
    }

    // Drop the padding position n from SA12 if present (it is a phantom).
    let sa12: Vec<u32> = if n % 3 == 1 {
        pram.filter(&sa12, |_, &i| (i as usize) < n)
    } else {
        sa12
    };

    // Mod-0 suffixes: stable sort by (sp[i], rank12[i+1]).
    let s0: Vec<u32> = {
        let all: Vec<u32> = (0..n as u32).collect();
        pram.filter(&all, |_, &i| i % 3 == 0)
    };
    let s0 = radix_sort_by_key(pram, &s0, |&i| u64::from(rank12[i as usize + 1]));
    let sa0 = radix_sort_by_key(pram, &s0, |&i| u64::from(sp[i as usize]));

    // Merge. The comparator is total across the two sides: mixed pairs use
    // the rule dictated by the sampled element's residue.
    let less = |&a: &u32, &b: &u32| -> bool {
        let (i, j) = (a as usize, b as usize);
        match (i % 3, j % 3) {
            (0, 0) => (sp[i], rank12[i + 1]) < (sp[j], rank12[j + 1]),
            (1, 0) | (0, 1) => (sp[i], rank12[i + 1]) < (sp[j], rank12[j + 1]),
            (2, 0) | (0, 2) => {
                (sp[i], sp[i + 1], rank12[i + 2]) < (sp[j], sp[j + 1], rank12[j + 2])
            }
            _ => rank12[i] < rank12[j],
        }
    };
    pram.merge_by(&sa12, &sa0, less)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pardict_pram::{ceil_log2, Pram, SplitMix64};

    fn check(text: &[u8]) {
        let pram = Pram::seq();
        assert_eq!(
            suffix_array(&pram, text),
            suffix_array_naive(text),
            "text={:?}",
            String::from_utf8_lossy(text)
        );
    }

    #[test]
    fn classic_strings() {
        check(b"");
        check(b"a");
        check(b"ab");
        check(b"ba");
        check(b"aa");
        check(b"banana");
        check(b"mississippi");
        check(b"abracadabra");
        check(b"yabbadabbado");
    }

    #[test]
    fn repetitive_strings() {
        check(&[b'a'; 100]);
        check(&b"ab".repeat(50));
        check(&b"abc".repeat(33));
        // Fibonacci string: worst case for many suffix structures.
        let mut a = b"a".to_vec();
        let mut b = b"ab".to_vec();
        for _ in 0..10 {
            let c = [b.clone(), a.clone()].concat();
            a = b;
            b = c;
        }
        check(&b);
    }

    #[test]
    fn random_binary_and_wide_alphabets() {
        let mut rng = SplitMix64::new(6);
        for sigma in [2u64, 4, 26, 256] {
            for n in [10usize, 100, 1000] {
                let text: Vec<u8> = (0..n).map(|_| rng.next_below(sigma) as u8).collect();
                check(&text);
            }
        }
    }

    #[test]
    fn all_lengths_mod_three() {
        let mut rng = SplitMix64::new(7);
        for n in 3..40usize {
            let text: Vec<u8> = (0..n)
                .map(|_| (rng.next_below(3) + b'a' as u64) as u8)
                .collect();
            check(&text);
        }
    }

    #[test]
    fn linear_work_logsquared_depth() {
        let mut per_elem = Vec::new();
        for n in [1usize << 12, 1 << 14, 1 << 16] {
            let pram = Pram::seq();
            let mut rng = SplitMix64::new(9);
            let text: Vec<u8> = (0..n).map(|_| rng.next_below(4) as u8).collect();
            let _ = suffix_array(&pram, &text);
            let c = pram.cost();
            per_elem.push(c.work as f64 / n as f64);
            let lg = u64::from(ceil_log2(n));
            assert!(c.depth < 60 * lg * lg, "depth {} at n={n}", c.depth);
        }
        assert!(
            per_elem[2] < per_elem[0] * 1.6 + 4.0,
            "suffix array work grew superlinearly: {per_elem:?}"
        );
    }
}
