//! LCP arrays: sequential Kasai and a parallel fingerprint version.
//!
//! `lcp[k]` = length of the longest common prefix of the suffixes at
//! `sa[k-1]` and `sa[k]` (`lcp[0] = 0`).
//!
//! The parallel version computes the *permuted* LCP (PLCP) in text order:
//! blocks of `log n` positions are seeded by an `O(log n)` fingerprint
//! binary search and then extended left-to-right with galloping searches
//! from the Kasai lower bound `PLCP[i] ≥ PLCP[i−1] − 1`. Each gallop costs
//! `O(log(Δ + 2))`; the positive Δs telescope to `O(n)` globally, so the
//! whole pass is `O(n)` work and `O(log² n)` depth. Correctness is whp
//! (fingerprint equality); the Las Vegas layers above catch the rest.

use pardict_fingerprint::{random_base, PrefixHashes};
use pardict_pram::{ceil_log2, Pram};

/// Sequential Kasai: exact, `O(n)` time. The oracle and baseline.
#[must_use]
pub fn lcp_kasai(text: &[u8], sa: &[u32]) -> Vec<u32> {
    let n = text.len();
    assert_eq!(sa.len(), n);
    if n == 0 {
        return Vec::new();
    }
    let mut rank = vec![0u32; n];
    for (k, &i) in sa.iter().enumerate() {
        rank[i as usize] = k as u32;
    }
    let mut lcp = vec![0u32; n];
    let mut h = 0usize;
    for i in 0..n {
        let r = rank[i] as usize;
        if r == 0 {
            h = 0;
            continue;
        }
        let j = sa[r - 1] as usize;
        while i + h < n && j + h < n && text[i + h] == text[j + h] {
            h += 1;
        }
        lcp[r] = h as u32;
        h = h.saturating_sub(1);
    }
    lcp
}

/// Parallel LCP via blocked PLCP galloping. Expected `O(n)` work,
/// `O(log² n)` depth; equal to [`lcp_kasai`] with high probability.
#[must_use]
pub fn lcp_parallel(pram: &Pram, text: &[u8], sa: &[u32], seed: u64) -> Vec<u32> {
    let n = text.len();
    assert_eq!(sa.len(), n);
    if n == 0 {
        return Vec::new();
    }
    let hashes = PrefixHashes::build(pram, text, random_base(seed));
    // Monte Carlo equality of text[i..i+l] and text[j..j+l].
    let eq = |i: usize, j: usize, l: usize| -> bool {
        i + l <= n && j + l <= n && hashes.substring(i, l) == hashes.substring(j, l)
    };
    // Longest common extension of suffixes i and j, with a known-good lower
    // bound `lo`, by galloping + binary search. Returns (lce, ops).
    let lce_from = |i: usize, j: usize, lo: usize| -> (usize, u64) {
        let cap = n - i.max(j);
        let mut ops = 1u64;
        if lo >= cap {
            return (cap, ops);
        }
        debug_assert!(eq(i, j, lo));
        // Gallop until failure.
        let mut step = 1usize;
        let mut good = lo;
        loop {
            let probe = (good + step).min(cap);
            ops += 1;
            if eq(i, j, probe) {
                good = probe;
                if probe == cap {
                    return (cap, ops);
                }
                step *= 2;
            } else {
                // Binary search in (good, probe).
                let (mut lo_b, mut hi_b) = (good, probe - 1);
                while lo_b < hi_b {
                    let mid = (lo_b + hi_b).div_ceil(2);
                    ops += 1;
                    if eq(i, j, mid) {
                        lo_b = mid;
                    } else {
                        hi_b = mid - 1;
                    }
                }
                return (lo_b, ops);
            }
        }
    };

    // rank and phi (previous suffix in SA order), in two rounds.
    let mut rank = vec![0u32; n];
    pram.ledger().round(n as u64);
    for (k, &i) in sa.iter().enumerate() {
        rank[i as usize] = k as u32;
    }
    let phi: Vec<u32> = pram.tabulate(n, |i| {
        let r = rank[i] as usize;
        if r == 0 {
            u32::MAX
        } else {
            sa[r - 1]
        }
    });

    // Blocked PLCP.
    let b = (ceil_log2(n) as usize).max(1);
    let nblocks = n.div_ceil(b);
    let plcp_blocks: Vec<Vec<u32>> = pram.tabulate_costed(nblocks, |k| {
        let lo_i = k * b;
        let hi_i = (lo_i + b).min(n);
        let mut out = Vec::with_capacity(hi_i - lo_i);
        let mut ops = 1u64;
        let mut prev = 0usize;
        for (t, i) in (lo_i..hi_i).enumerate() {
            if phi[i] == u32::MAX {
                out.push(0);
                prev = 0;
                continue;
            }
            let j = phi[i] as usize;
            let lower = if t == 0 { 0 } else { prev.saturating_sub(1) };
            let (l, o) = lce_from(i, j, lower);
            ops += o;
            out.push(l as u32);
            prev = l;
        }
        (out, ops)
    });
    let mut plcp = vec![0u32; n];
    pram.ledger().round(n as u64);
    for (k, blk) in plcp_blocks.iter().enumerate() {
        plcp[k * b..k * b + blk.len()].copy_from_slice(blk);
    }

    // lcp[k] = plcp[sa[k]]; lcp[0] = 0 by construction (phi undefined).
    pram.tabulate(n, |k| plcp[sa[k] as usize])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sa::{suffix_array, suffix_array_naive};
    use pardict_pram::{Pram, SplitMix64};

    fn naive_lcp(a: &[u8], b: &[u8]) -> u32 {
        a.iter().zip(b).take_while(|(x, y)| x == y).count() as u32
    }

    fn check(text: &[u8]) {
        let pram = Pram::seq();
        let sa = suffix_array(&pram, text);
        let kasai = lcp_kasai(text, &sa);
        // Kasai vs naive.
        for k in 1..sa.len() {
            let want = naive_lcp(&text[sa[k - 1] as usize..], &text[sa[k] as usize..]);
            assert_eq!(kasai[k], want, "k={k}");
        }
        // Parallel vs Kasai.
        let par = lcp_parallel(&pram, text, &sa, 42);
        assert_eq!(par, kasai);
    }

    #[test]
    fn classic_strings() {
        check(b"");
        check(b"a");
        check(b"banana");
        check(b"mississippi");
        check(b"abracadabra");
    }

    #[test]
    fn repetitive() {
        check(&[b'z'; 200]);
        check(&b"ab".repeat(100));
        check(&b"aab".repeat(60));
    }

    #[test]
    fn random_texts() {
        let mut rng = SplitMix64::new(11);
        for sigma in [2u64, 4, 26] {
            for n in [50usize, 500, 3000] {
                let text: Vec<u8> = (0..n).map(|_| rng.next_below(sigma) as u8).collect();
                check(&text);
            }
        }
    }

    #[test]
    fn parallel_lcp_linear_work() {
        let mut per_elem = Vec::new();
        for n in [1usize << 13, 1 << 15, 1 << 17] {
            let pram = Pram::seq();
            let mut rng = SplitMix64::new(3);
            let text: Vec<u8> = (0..n).map(|_| rng.next_below(3) as u8).collect();
            let sa = suffix_array_naive_fast(&text);
            let (_, cost) = pram.metered(|p| lcp_parallel(p, &text, &sa, 1));
            per_elem.push(cost.work as f64 / n as f64);
        }
        assert!(
            per_elem[2] < per_elem[0] * 1.5 + 2.0,
            "parallel LCP superlinear: {per_elem:?}"
        );
    }

    /// Fast-enough exact SA for the cost test (avoids measuring DC3 too).
    fn suffix_array_naive_fast(text: &[u8]) -> Vec<u32> {
        if text.len() < 2000 {
            suffix_array_naive(text)
        } else {
            let pram = Pram::seq();
            suffix_array(&pram, text)
        }
    }
}
