#![warn(missing_docs)]

//! # pardict-suffix — suffix arrays and suffix trees (Lemmas 2.1 and 2.6)
//!
//! The paper's algorithms all start from the suffix tree of the dictionary
//! concatenation or of the text. This crate builds that object in PRAM
//! rounds — suffix array (DC3 with radix-sort rounds), LCP array (blocked
//! fingerprint galloping), tree structure (ANSV + list ranking), suffix and
//! Weiner links (via LCA) — and exposes the query surface the paper uses:
//! child navigation, subtree leaf ranges, LCA, and O(1) string LCP /
//! equality queries (Lemma 2.6).
//!
//! ```
//! use pardict_pram::Pram;
//! use pardict_suffix::SuffixTree;
//!
//! let pram = Pram::seq();
//! let st = SuffixTree::build(&pram, b"banana", 1);
//! assert!(st.contains(b"nan"));
//! let mut occ = st.occurrences(b"ana");
//! occ.sort_unstable();
//! assert_eq!(occ, vec![1, 3]);
//! assert_eq!(st.lcp_positions(1, 3), 3); // "anana" vs "ana"
//! ```

mod doubling;
mod lcp;
mod sa;
mod tree;

pub use doubling::suffix_array_doubling;
pub use lcp::{lcp_kasai, lcp_parallel};
pub use sa::{suffix_array, suffix_array_naive};
pub use tree::{sym_code, SuffixTree, SymCode, SENTINEL_CODE};

#[cfg(test)]
mod proptests {
    use super::*;
    use pardict_pram::Pram;
    use proptest::prelude::*;

    fn nul_free_text(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
        prop::collection::vec(
            prop::sample::select(vec![b'a', b'b', b'c', b'd']),
            0..max_len,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn dc3_and_doubling_match_naive(text in nul_free_text(250)) {
            let pram = Pram::seq();
            let want = suffix_array_naive(&text);
            prop_assert_eq!(suffix_array(&pram, &text), want.clone());
            prop_assert_eq!(suffix_array_doubling(&pram, &text), want);
        }

        #[test]
        fn lcp_parallel_matches_kasai(text in nul_free_text(250), seed in 0u64..500) {
            let pram = Pram::seq();
            let sa = suffix_array(&pram, &text);
            prop_assert_eq!(
                lcp_parallel(&pram, &text, &sa, seed),
                lcp_kasai(&text, &sa)
            );
        }

        #[test]
        fn tree_find_matches_window_scan(text in nul_free_text(200), pat in nul_free_text(6)) {
            prop_assume!(!pat.is_empty());
            let pram = Pram::seq();
            let st = SuffixTree::build(&pram, &text, 5);
            let mut got = st.occurrences(&pat);
            got.sort_unstable();
            let want: Vec<usize> = if pat.len() > text.len() {
                Vec::new()
            } else {
                (0..=text.len() - pat.len())
                    .filter(|&i| &text[i..i + pat.len()] == pat.as_slice())
                    .collect()
            };
            prop_assert_eq!(got, want);
        }

        #[test]
        fn suffix_links_shorten_by_one(text in nul_free_text(150)) {
            let pram = Pram::seq();
            let st = SuffixTree::build(&pram, &text, 9);
            for v in 0..st.num_nodes() {
                if v == st.root() || st.str_depth(v) == 0 {
                    continue;
                }
                if st.is_leaf(v) && st.leaf_pos(v) == st.num_leaves() - 1 {
                    continue;
                }
                prop_assert_eq!(st.str_depth(st.slink(v)), st.str_depth(v) - 1);
            }
        }
    }
}
