//! Suffix trees (Lemma 2.1) with suffix links, Weiner links, LCA, and O(1)
//! string LCP queries (Lemma 2.6).
//!
//! Construction is the SA + LCP + ANSV route (see DESIGN.md): internal
//! nodes are the distinct LCP-interval representatives found by nearest
//! smaller values, duplicate-value boundaries are merged by list ranking
//! over equal-value chains, and leaves attach to the deeper of their two
//! neighbouring boundaries. Everything is PRAM rounds: expected `O(n)` work,
//! polylog depth.
//!
//! A unique sentinel (byte 0) is appended internally, so the input text must
//! be NUL-free; every suffix then ends at a distinct leaf and every edge has
//! a non-empty label.

use crate::lcp::lcp_parallel;
use crate::sa::suffix_array;
use pardict_fingerprint::{random_base, PrefixHashes};
use pardict_graph::Forest;
use pardict_pram::{list_rank_random_mate_full, Pram, SplitMix64};
use pardict_rmq::{ansv_par, Side, Strictness, TreeLca};
use std::collections::HashMap;

/// Character code on edges: 0 is the sentinel, byte `c` is `c + 1`.
pub type SymCode = u16;

/// Code for the sentinel symbol.
pub const SENTINEL_CODE: SymCode = 0;

/// Code for a text byte.
#[inline]
#[must_use]
pub fn sym_code(c: u8) -> SymCode {
    SymCode::from(c) + 1
}

/// A suffix tree over `text · $`.
///
/// Node ids: `0..num_leaves()` are leaves in suffix-array order;
/// `num_leaves()..num_nodes()` are internal nodes (the root among them).
#[derive(Debug)]
pub struct SuffixTree {
    /// Original text (without the sentinel).
    text: Vec<u8>,
    /// Text plus sentinel; label positions index into this.
    padded: Vec<u8>,
    sa: Vec<u32>,
    lcp: Vec<u32>,
    /// Text position (0..=n) → SA position.
    rank: Vec<u32>,
    /// Per node: string depth (length of its path label).
    str_depth: Vec<u32>,
    /// Per node: a position in `padded` where its path label occurs.
    label_pos: Vec<u32>,
    /// Per node: inclusive range of SA positions of the leaves below it.
    leaf_lo: Vec<u32>,
    leaf_hi: Vec<u32>,
    /// Per node: suffix link target (root/self for root and sentinel leaf).
    slink: Vec<u32>,
    /// (node << 9 | code) → child with that leading symbol.
    child_by_sym: HashMap<u64, u32>,
    /// (node << 9 | code) → Weiner link: the node labelled `code · σ(node)`.
    wlink_by_sym: HashMap<u64, u32>,
    root: usize,
    forest: Forest,
    lca: TreeLca,
    hashes: PrefixHashes,
}

#[inline]
fn sym_key(node: usize, code: SymCode) -> u64 {
    ((node as u64) << 9) | u64::from(code)
}

impl SuffixTree {
    /// Build the suffix tree of `text` (NUL-free). Expected `O(n)` work.
    ///
    /// # Panics
    /// Panics if `text` contains a 0 byte (reserved for the sentinel).
    #[must_use]
    pub fn build(pram: &Pram, text: &[u8], seed: u64) -> Self {
        assert!(
            text.iter().all(|&c| c != 0),
            "suffix tree input must be NUL-free (0 is the internal sentinel)"
        );
        let mut rng = SplitMix64::new(seed ^ 0x5F1F);
        let mut padded = Vec::with_capacity(text.len() + 1);
        padded.extend_from_slice(text);
        padded.push(0);
        let m = padded.len(); // number of suffixes / leaves

        let sa = suffix_array(pram, &padded);
        let lcp = lcp_parallel(pram, &padded, &sa, rng.next_u64());
        let mut rank = vec![0u32; m];
        pram.ledger().round(m as u64);
        for (k, &i) in sa.iter().enumerate() {
            rank[i as usize] = k as u32;
        }

        // Boundary value array with -1 sentinels at 0 and m.
        let ell: Vec<i64> = pram.tabulate(m + 1, |k| {
            if k == 0 || k == m {
                -1
            } else {
                i64::from(lcp[k])
            }
        });
        let left = ansv_par(pram, &ell, Side::Left, Strictness::Strict);
        let right = ansv_par(pram, &ell, Side::Right, Strictness::Strict);
        let lefteq = ansv_par(pram, &ell, Side::Left, Strictness::WeakOrEqual);

        // Equal-value chains: each boundary points to the nearest equal
        // boundary on its left (nothing smaller between, by nearest-≤);
        // chain tails are the node representatives.
        let chain_next: Vec<usize> = pram.tabulate(m + 1, |k| {
            if k == 0 || k == m {
                return k;
            }
            let j = lefteq[k];
            if j != usize::MAX && ell[j] == ell[k] && j != 0 {
                j
            } else {
                k
            }
        });
        let rep = list_rank_random_mate_full(pram, &chain_next, rng.next_u64()).tail;

        // Compact ids for representative boundaries.
        let is_rep: Vec<bool> = pram.tabulate(m + 1, |k| k >= 1 && k < m && rep[k] == k);
        let rep_list = pram.pack_indices(&is_rep);
        let num_internal = rep_list.len().max(1); // ≥ 1: the root
        let mut internal_idx = vec![u32::MAX; m + 1];
        pram.ledger().round(rep_list.len() as u64);
        for (x, &k) in rep_list.iter().enumerate() {
            internal_idx[k] = x as u32;
        }
        let num_nodes = m + num_internal;

        // The root: representative of the 0-valued chain (always present
        // for m >= 2: the sentinel suffix gives a 0 boundary at k = 1).
        let root = if rep_list.is_empty() {
            m // degenerate single-leaf text: synthesize a root
        } else {
            debug_assert_eq!(ell[rep[1]], 0);
            m + internal_idx[rep[1]] as usize
        };

        // Node id of the representative of boundary k.
        let node_of_boundary = |k: usize| -> usize { m + internal_idx[rep[k]] as usize };

        // Parents, depths, label positions, leaf ranges.
        let mut parent = vec![0usize; num_nodes];
        let mut str_depth = vec![0u32; num_nodes];
        let mut label_pos = vec![0u32; num_nodes];
        let mut leaf_lo = vec![0u32; num_nodes];
        let mut leaf_hi = vec![0u32; num_nodes];

        // Leaves.
        pram.ledger().round(m as u64);
        for k in 0..m {
            let node = k;
            str_depth[node] = (m - sa[k] as usize) as u32;
            label_pos[node] = sa[k];
            leaf_lo[node] = k as u32;
            leaf_hi[node] = k as u32;
            // Deeper neighbouring boundary (k or k + 1 in ell coordinates).
            let (bl, br) = (ell[k], ell[k + 1]);
            parent[node] = if bl < 0 && br < 0 {
                root
            } else if bl >= br {
                node_of_boundary(k)
            } else {
                node_of_boundary(k + 1)
            };
        }

        // Internal nodes.
        pram.ledger().round(rep_list.len() as u64);
        for &k in &rep_list {
            let node = m + internal_idx[k] as usize;
            str_depth[node] = ell[k] as u32;
            label_pos[node] = sa[k];
            leaf_lo[node] = left[k] as u32;
            leaf_hi[node] = (right[k] - 1) as u32;
            if node == root {
                parent[node] = node;
            } else {
                let (l, r) = (left[k], right[k]);
                let pb = if ell[l] >= ell[r] { l } else { r };
                parent[node] = if ell[pb] < 0 {
                    root
                } else {
                    node_of_boundary(pb)
                };
            }
        }
        if rep_list.is_empty() {
            // Single-leaf degenerate tree.
            parent[root] = root;
            str_depth[root] = 0;
            label_pos[root] = 0;
            leaf_lo[root] = 0;
            leaf_hi[root] = (m - 1) as u32;
            parent[0] = root;
        }

        let forest = Forest::from_parents(pram, &parent);
        let lca = TreeLca::new(pram, &forest, rng.next_u64());

        // Child lookup by leading edge symbol.
        let mut child_by_sym = HashMap::with_capacity(num_nodes);
        pram.ledger().round(num_nodes as u64);
        for v in 0..num_nodes {
            if v == root {
                continue;
            }
            let p = parent[v];
            let c = padded[(label_pos[v] + str_depth[p]) as usize];
            let code = if (label_pos[v] + str_depth[p]) as usize == m - 1 {
                SENTINEL_CODE
            } else {
                sym_code(c)
            };
            let prev = child_by_sym.insert(sym_key(p, code), v as u32);
            debug_assert!(prev.is_none(), "two children with one symbol");
        }

        // Suffix links: slink(v) = lca(next-leaf of two separated leaves).
        let slink: Vec<u32> = pram.tabulate(num_nodes, |v| {
            if v < m {
                // Leaf for text position sa[v]; its suffix link is the leaf
                // of the next position (self for the sentinel leaf).
                let p = sa[v] as usize;
                if p + 1 < m {
                    rank[p + 1]
                } else {
                    v as u32
                }
            } else if v == root || str_depth[v] == 0 {
                root as u32
            } else {
                let k = rep_list[v - m];
                let (p1, p2) = (sa[k - 1] as usize, sa[k] as usize);
                debug_assert!(p1 + 1 < m && p2 + 1 < m);
                lca.lca(rank[p1 + 1] as usize, rank[p2 + 1] as usize) as u32
            }
        });

        // Weiner links: invert the suffix links, keyed by leading symbol.
        let mut wlink_by_sym = HashMap::with_capacity(num_nodes);
        pram.ledger().round(num_nodes as u64);
        for v in 0..num_nodes {
            if v == root || (v >= m && str_depth[v] == 0) {
                continue;
            }
            if v < m && sa[v] as usize == m - 1 {
                continue; // sentinel leaf has no inverse link
            }
            let lp = label_pos[v] as usize;
            let code = if lp == m - 1 {
                SENTINEL_CODE
            } else {
                sym_code(padded[lp])
            };
            let target = slink[v] as usize;
            let prev = wlink_by_sym.insert(sym_key(target, code), v as u32);
            debug_assert!(prev.is_none(), "duplicate Weiner link");
        }

        let hashes = PrefixHashes::build(pram, &padded, random_base(rng.next_u64()));

        Self {
            text: text.to_vec(),
            padded,
            sa,
            lcp,
            rank,
            str_depth,
            label_pos,
            leaf_lo,
            leaf_hi,
            slink,
            child_by_sym,
            wlink_by_sym,
            root,
            forest,
            lca,
            hashes,
        }
    }

    /// The original text (without the sentinel).
    #[must_use]
    pub fn text(&self) -> &[u8] {
        &self.text
    }

    /// Text plus sentinel byte; `label_pos` indexes into this.
    #[must_use]
    pub fn padded(&self) -> &[u8] {
        &self.padded
    }

    /// Number of leaves (= text length + 1, counting the sentinel suffix).
    #[must_use]
    pub fn num_leaves(&self) -> usize {
        self.sa.len()
    }

    /// Total number of nodes.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.str_depth.len()
    }

    /// The root node id.
    #[must_use]
    pub fn root(&self) -> usize {
        self.root
    }

    /// True when `v` is a leaf.
    #[must_use]
    pub fn is_leaf(&self, v: usize) -> bool {
        v < self.num_leaves()
    }

    /// Text position of the suffix ending at leaf `v`.
    #[must_use]
    pub fn leaf_pos(&self, v: usize) -> usize {
        debug_assert!(self.is_leaf(v));
        self.sa[v] as usize
    }

    /// Leaf node for the suffix starting at text position `pos` (0..=n).
    #[must_use]
    pub fn leaf_node(&self, pos: usize) -> usize {
        self.rank[pos] as usize
    }

    /// Parent of `v` (root maps to itself).
    #[must_use]
    pub fn parent(&self, v: usize) -> usize {
        self.forest.parent(v)
    }

    /// String depth `|σ(v)|`.
    #[must_use]
    pub fn str_depth(&self, v: usize) -> usize {
        self.str_depth[v] as usize
    }

    /// A position in [`Self::padded`] where `σ(v)` occurs.
    #[must_use]
    pub fn label_pos(&self, v: usize) -> usize {
        self.label_pos[v] as usize
    }

    /// Children of `v` (unordered with respect to edge symbols).
    #[must_use]
    pub fn children(&self, v: usize) -> &[usize] {
        self.forest.children(v)
    }

    /// Child of `v` whose edge starts with symbol `code`.
    #[must_use]
    pub fn child(&self, v: usize, code: SymCode) -> Option<usize> {
        self.child_by_sym
            .get(&sym_key(v, code))
            .map(|&c| c as usize)
    }

    /// Child of `v` whose edge starts with text byte `c`.
    #[must_use]
    pub fn child_by_byte(&self, v: usize, c: u8) -> Option<usize> {
        self.child(v, sym_code(c))
    }

    /// Inclusive SA-position range of the leaves below `v`.
    #[must_use]
    pub fn leaf_range(&self, v: usize) -> (usize, usize) {
        (self.leaf_lo[v] as usize, self.leaf_hi[v] as usize)
    }

    /// The suffix array (over text + sentinel).
    #[must_use]
    pub fn sa(&self) -> &[u32] {
        &self.sa
    }

    /// The LCP array (`lcp[k]` between SA[k-1] and SA[k]).
    #[must_use]
    pub fn lcp(&self) -> &[u32] {
        &self.lcp
    }

    /// Lowest common ancestor of two nodes.
    #[must_use]
    pub fn lca(&self, u: usize, v: usize) -> usize {
        self.lca.lca(u, v)
    }

    /// The LCA structure (exposes the Euler tour).
    #[must_use]
    pub fn tree_lca(&self) -> &TreeLca {
        &self.lca
    }

    /// The underlying forest (parents + children CSR).
    #[must_use]
    pub fn forest(&self) -> &Forest {
        &self.forest
    }

    /// Suffix link: the node labelled `σ(v)` minus its first symbol.
    #[must_use]
    pub fn slink(&self, v: usize) -> usize {
        self.slink[v] as usize
    }

    /// Weiner link: the node labelled `code · σ(v)`, if explicit.
    #[must_use]
    pub fn wlink(&self, v: usize, code: SymCode) -> Option<usize> {
        self.wlink_by_sym
            .get(&sym_key(v, code))
            .map(|&u| u as usize)
    }

    /// O(1) longest common prefix of the suffixes at text positions `i`
    /// and `j` (Lemma 2.6), not counting the sentinel.
    #[must_use]
    pub fn lcp_positions(&self, i: usize, j: usize) -> usize {
        let n = self.text.len();
        debug_assert!(i <= n && j <= n);
        if i == j {
            return n - i;
        }
        let v = self.lca.lca(self.leaf_node(i), self.leaf_node(j));
        self.str_depth(v)
    }

    /// O(1) Monte-Carlo-free equality of `text[i..i+l]` and `text[j..j+l]`
    /// (Lemma 2.6): exact, via the LCA depth.
    #[must_use]
    pub fn eq_substrings(&self, i: usize, j: usize, l: usize) -> bool {
        let n = self.text.len();
        i + l <= n && j + l <= n && self.lcp_positions(i, j) >= l
    }

    /// Karp–Rabin prefix hashes of the padded text (for fingerprint tables).
    #[must_use]
    pub fn hashes(&self) -> &PrefixHashes {
        &self.hashes
    }

    /// Locate a pattern by walking from the root: returns the inclusive SA
    /// range of suffixes starting with `pattern`, or `None` if it does not
    /// occur. `O(|pattern|)` character comparisons.
    #[must_use]
    pub fn find(&self, pattern: &[u8]) -> Option<(usize, usize)> {
        if pattern.contains(&0) {
            return None;
        }
        let mut v = self.root;
        let mut matched = 0usize;
        while matched < pattern.len() {
            let c = self.child(v, sym_code(pattern[matched]))?;
            let lo = self.label_pos(c) + matched;
            let hi = (self.label_pos(c) + self.str_depth(c)).min(self.padded.len());
            for t in lo..hi {
                if matched == pattern.len() {
                    break;
                }
                if self.padded[t] != pattern[matched] {
                    return None;
                }
                matched += 1;
            }
            v = c;
        }
        Some(self.leaf_range(v))
    }

    /// All occurrence start positions of `pattern`, unordered.
    /// `O(|pattern| + occ)`.
    #[must_use]
    pub fn occurrences(&self, pattern: &[u8]) -> Vec<usize> {
        match self.find(pattern) {
            None => Vec::new(),
            Some((lo, hi)) => (lo..=hi)
                .map(|k| self.leaf_pos(k))
                .filter(|&p| p + pattern.len() <= self.text.len())
                .collect(),
        }
    }

    /// True when `pattern` occurs in the text. `O(|pattern|)`.
    #[must_use]
    pub fn contains(&self, pattern: &[u8]) -> bool {
        self.find(pattern).is_some()
    }

    /// First symbol code of the edge entering `v` (undefined for the root).
    #[must_use]
    pub fn edge_first_code(&self, v: usize) -> SymCode {
        debug_assert_ne!(v, self.root);
        let p = self.parent(v);
        let pos = self.label_pos(v) + self.str_depth(p);
        if pos == self.padded.len() - 1 {
            SENTINEL_CODE
        } else {
            sym_code(self.padded[pos])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pardict_pram::Pram;

    fn build(text: &[u8]) -> SuffixTree {
        let pram = Pram::seq();
        SuffixTree::build(&pram, text, 12345)
    }

    /// Walk the tree from the root following the suffix at `pos`; must end
    /// exactly at that suffix's leaf.
    fn walk_suffix(st: &SuffixTree, pos: usize) {
        let padded = st.padded();
        let m = padded.len();
        let mut v = st.root();
        let mut matched = 0usize;
        while matched < m - pos {
            let code = if pos + matched == m - 1 {
                SENTINEL_CODE
            } else {
                sym_code(padded[pos + matched])
            };
            let c = st
                .child(v, code)
                .unwrap_or_else(|| panic!("no child at depth {matched} for suffix {pos}"));
            // Verify the whole edge label matches.
            let lo = st.label_pos(c) + st.str_depth(v);
            let hi = st.label_pos(c) + st.str_depth(c);
            for (off, t) in (lo..hi).enumerate() {
                assert_eq!(
                    padded[t],
                    padded[pos + matched + off],
                    "edge mismatch, suffix {pos}"
                );
            }
            matched = st.str_depth(c);
            v = c;
        }
        assert!(st.is_leaf(v));
        assert_eq!(st.leaf_pos(v), pos);
    }

    fn full_check(text: &[u8]) {
        let st = build(text);
        let m = text.len() + 1;
        assert_eq!(st.num_leaves(), m);
        for pos in 0..m {
            walk_suffix(&st, pos);
        }
        // Structural sanity.
        for v in 0..st.num_nodes() {
            if v == st.root() {
                continue;
            }
            let p = st.parent(v);
            assert!(st.str_depth(p) < st.str_depth(v), "depth order v={v}");
            let (lo, hi) = st.leaf_range(v);
            let (plo, phi) = st.leaf_range(p);
            assert!(plo <= lo && hi <= phi, "leaf range nesting");
            if !st.is_leaf(v) {
                assert!(st.children(v).len() >= 2, "internal node with < 2 children");
            }
        }
        // Suffix links: σ(slink(v)) == σ(v)[1..].
        for v in 0..st.num_nodes() {
            if v == st.root() || st.str_depth(v) == 0 {
                continue;
            }
            if st.is_leaf(v) && st.leaf_pos(v) == m - 1 {
                continue;
            }
            let s = st.slink(v);
            assert_eq!(st.str_depth(s), st.str_depth(v) - 1, "slink depth v={v}");
            let a = st.label_pos(v) + 1;
            let b = st.label_pos(s);
            for off in 0..st.str_depth(s) {
                assert_eq!(st.padded()[a + off], st.padded()[b + off], "slink label");
            }
            // Weiner link inverts it.
            let lp = st.label_pos(v);
            let code = if lp == m - 1 {
                SENTINEL_CODE
            } else {
                sym_code(st.padded()[lp])
            };
            assert_eq!(st.wlink(s, code), Some(v), "wlink inverse v={v}");
        }
    }

    #[test]
    fn classic_texts() {
        full_check(b"banana");
        full_check(b"mississippi");
        full_check(b"abracadabra");
        full_check(b"a");
        full_check(b"ab");
        full_check(b"aa");
        full_check(b"");
    }

    #[test]
    fn repetitive_texts() {
        full_check(&[b'a'; 64]);
        full_check(&b"ab".repeat(40));
        full_check(&b"abc".repeat(25));
    }

    #[test]
    fn random_texts() {
        use pardict_pram::SplitMix64;
        let mut rng = SplitMix64::new(55);
        for sigma in [2u64, 4, 26] {
            for n in [17usize, 100, 400] {
                let text: Vec<u8> = (0..n).map(|_| (rng.next_below(sigma) + 97) as u8).collect();
                full_check(&text);
            }
        }
    }

    #[test]
    fn lcp_positions_matches_naive() {
        use pardict_pram::SplitMix64;
        let mut rng = SplitMix64::new(77);
        let text: Vec<u8> = (0..300).map(|_| (rng.next_below(3) + 97) as u8).collect();
        let st = build(&text);
        for _ in 0..2000 {
            let i = rng.next_below(text.len() as u64) as usize;
            let j = rng.next_below(text.len() as u64) as usize;
            let naive = text[i..]
                .iter()
                .zip(&text[j..])
                .take_while(|(a, b)| a == b)
                .count();
            let got = st.lcp_positions(i, j);
            if i == j {
                assert_eq!(got, text.len() - i);
            } else {
                assert_eq!(got, naive, "i={i} j={j}");
            }
        }
    }

    #[test]
    fn eq_substrings_is_exact() {
        let st = build(b"xyxyxyxy");
        assert!(st.eq_substrings(0, 2, 6));
        assert!(!st.eq_substrings(0, 1, 2));
        assert!(!st.eq_substrings(0, 2, 7)); // out of range
    }

    #[test]
    #[should_panic(expected = "NUL-free")]
    fn rejects_nul_bytes() {
        build(&[1, 2, 0, 3]);
    }

    #[test]
    fn find_and_occurrences() {
        let st = build(b"banana");
        assert!(st.contains(b"ana"));
        assert!(st.contains(b"banana"));
        assert!(!st.contains(b"nanab"));
        assert!(!st.contains(b"x"));
        assert!(st.contains(b""));
        let mut occ = st.occurrences(b"ana");
        occ.sort_unstable();
        assert_eq!(occ, vec![1, 3]);
        let mut occ = st.occurrences(b"a");
        occ.sort_unstable();
        assert_eq!(occ, vec![1, 3, 5]);
        assert!(st.occurrences(b"nan\0").is_empty());
    }

    #[test]
    fn occurrences_match_naive_on_random_text() {
        use pardict_pram::SplitMix64;
        let mut rng = SplitMix64::new(91);
        let text: Vec<u8> = (0..400).map(|_| (rng.next_below(3) + 97) as u8).collect();
        let st = build(&text);
        for _ in 0..200 {
            let l = 1 + rng.next_below(6) as usize;
            let i = rng.next_below((text.len() - l) as u64) as usize;
            let pat = &text[i..i + l];
            let mut got = st.occurrences(pat);
            got.sort_unstable();
            let want: Vec<usize> = (0..=text.len() - l)
                .filter(|&j| &text[j..j + l] == pat)
                .collect();
            assert_eq!(got, want, "pattern {:?}", String::from_utf8_lossy(pat));
        }
    }

    #[test]
    fn leaf_node_roundtrip() {
        let st = build(b"banana");
        for pos in 0..=6 {
            assert_eq!(st.leaf_pos(st.leaf_node(pos)), pos);
        }
    }
}
