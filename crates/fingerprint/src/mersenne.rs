//! Arithmetic modulo the Mersenne prime p = 2⁶¹ − 1.
//!
//! Mersenne reduction needs no division: `x mod p = (x & p) + (x >> 61)`
//! (with one conditional correction), which keeps fingerprint composition a
//! handful of cycles — important because every string comparison in the
//! matcher goes through it.

/// The Mersenne prime 2⁶¹ − 1.
pub const P61: u64 = (1 << 61) - 1;

/// `(a + b) mod p` for `a, b < p`.
#[inline]
#[must_use]
pub fn m61_add(a: u64, b: u64) -> u64 {
    debug_assert!(a < P61 && b < P61);
    let s = a + b;
    if s >= P61 {
        s - P61
    } else {
        s
    }
}

/// `(a - b) mod p` for `a, b < p`.
#[inline]
#[must_use]
pub fn m61_sub(a: u64, b: u64) -> u64 {
    debug_assert!(a < P61 && b < P61);
    if a >= b {
        a - b
    } else {
        a + P61 - b
    }
}

/// `(a · b) mod p` for `a, b < p`, via 128-bit product + Mersenne folding.
#[inline]
#[must_use]
pub fn m61_mul(a: u64, b: u64) -> u64 {
    debug_assert!(a < P61 && b < P61);
    let prod = u128::from(a) * u128::from(b);
    let lo = (prod as u64) & P61;
    let hi = (prod >> 61) as u64;
    let s = lo + hi;
    if s >= P61 {
        s - P61
    } else {
        s
    }
}

/// `base^exp mod p` by binary exponentiation.
#[must_use]
pub fn m61_pow(base: u64, mut exp: u64) -> u64 {
    let mut b = base % P61;
    let mut acc = 1u64;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = m61_mul(acc, b);
        }
        b = m61_mul(b, b);
        exp >>= 1;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_wraps() {
        assert_eq!(m61_add(P61 - 1, 1), 0);
        assert_eq!(m61_add(5, 7), 12);
    }

    #[test]
    fn sub_wraps() {
        assert_eq!(m61_sub(0, 1), P61 - 1);
        assert_eq!(m61_sub(9, 4), 5);
    }

    #[test]
    fn mul_matches_u128_reference() {
        let pairs = [
            (123_456_789u64, 987_654_321u64),
            (P61 - 1, P61 - 1),
            (1, P61 - 1),
            (0, 5),
            (1_u64 << 60, (1_u64 << 60) + 12345),
        ];
        for (a, b) in pairs {
            let want = ((u128::from(a) * u128::from(b)) % u128::from(P61)) as u64;
            assert_eq!(m61_mul(a, b), want, "a={a} b={b}");
        }
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let base = 1_000_003;
        let mut acc = 1u64;
        for e in 0..64u64 {
            assert_eq!(m61_pow(base, e), acc);
            acc = m61_mul(acc, base);
        }
    }

    #[test]
    fn fermat_little_theorem() {
        // a^(p-1) = 1 mod p for a not divisible by p.
        for a in [2u64, 3, 12345, P61 - 2] {
            assert_eq!(m61_pow(a, P61 - 1), 1);
        }
    }
}
