//! Prefix-hash tables with O(1) substring fingerprints.

use crate::mersenne::{m61_add, m61_mul, m61_sub, P61};
use pardict_pram::Pram;

/// A composable fingerprint: the polynomial hash of a string together with
/// `rᴸ` for its length `L`, so two fingerprints concatenate in O(1):
/// `fp(xy) = fp(x)·r^|y| + fp(y)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fingerprint {
    /// Polynomial hash value in `[0, p)`.
    pub val: u64,
    /// `r^len mod p` — carries the length implicitly.
    pub rpow: u64,
}

impl Fingerprint {
    /// Fingerprint of the empty string.
    #[must_use]
    pub fn empty() -> Self {
        Self { val: 0, rpow: 1 }
    }

    /// Fingerprint of the concatenation `self · other`.
    #[must_use]
    pub fn concat(self, other: Self) -> Self {
        Self {
            val: m61_add(m61_mul(self.val, other.rpow), other.val),
            rpow: m61_mul(self.rpow, other.rpow),
        }
    }
}

/// Prefix hashes of a byte string for O(1) substring fingerprints.
///
/// `pre[i]` is the hash of `s[..i]`; `pows[i] = rⁱ`. Construction is a PRAM
/// scan (O(n) work, O(log n) depth) in [`PrefixHashes::build`], or a plain
/// sequential pass in [`PrefixHashes::build_seq`] when no ledger is in play.
#[derive(Debug, Clone)]
pub struct PrefixHashes {
    base: u64,
    pre: Vec<u64>,
    pows: Vec<u64>,
}

impl PrefixHashes {
    /// Parallel construction as a scan under the concatenation monoid.
    #[must_use]
    pub fn build(pram: &Pram, s: &[u8], base: u64) -> Self {
        assert!((2..P61 - 1).contains(&base), "base must be in [2, p-2]");
        let elems: Vec<Fingerprint> = pram.map(s, |_, &c| Fingerprint {
            val: u64::from(c) + 1, // +1 so NUL bytes still contribute
            rpow: base,
        });
        let inc = pram.scan_inclusive(&elems, Fingerprint::empty(), Fingerprint::concat);
        let mut pre = Vec::with_capacity(s.len() + 1);
        let mut pows = Vec::with_capacity(s.len() + 1);
        pre.push(0);
        pows.push(1);
        for f in &inc {
            pre.push(f.val);
            pows.push(f.rpow);
        }
        Self { base, pre, pows }
    }

    /// Sequential construction (identical table).
    #[must_use]
    pub fn build_seq(s: &[u8], base: u64) -> Self {
        assert!((2..P61 - 1).contains(&base), "base must be in [2, p-2]");
        let mut pre = Vec::with_capacity(s.len() + 1);
        let mut pows = Vec::with_capacity(s.len() + 1);
        pre.push(0u64);
        pows.push(1u64);
        let mut h = 0u64;
        let mut pw = 1u64;
        for &c in s {
            h = m61_add(m61_mul(h, base), u64::from(c) + 1);
            pw = m61_mul(pw, base);
            pre.push(h);
            pows.push(pw);
        }
        Self { base, pre, pows }
    }

    /// The hashed string's length.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pre.len() - 1
    }

    /// True when the hashed string is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The fingerprint base in use.
    #[must_use]
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Hash value of `s[start..start + len]` in O(1).
    #[must_use]
    pub fn substring(&self, start: usize, len: usize) -> u64 {
        debug_assert!(start + len <= self.len());
        m61_sub(
            self.pre[start + len],
            m61_mul(self.pre[start], self.pows[len]),
        )
    }

    /// Composable fingerprint of `s[start..start + len]` in O(1).
    #[must_use]
    pub fn fingerprint(&self, start: usize, len: usize) -> Fingerprint {
        Fingerprint {
            val: self.substring(start, len),
            rpow: self.pows[len],
        }
    }

    /// Monte Carlo equality of two substrings of the hashed string.
    #[must_use]
    pub fn eq_substrings(&self, a: usize, b: usize, len: usize) -> bool {
        self.substring(a, len) == self.substring(b, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pardict_pram::{Pram, SplitMix64};

    const BASE: u64 = 1_000_000_007;

    fn naive_hash(s: &[u8], base: u64) -> u64 {
        let mut h = 0u64;
        for &c in s {
            h = m61_add(m61_mul(h, base), u64::from(c) + 1);
        }
        h
    }

    #[test]
    fn substring_matches_naive() {
        let s = b"abracadabra".to_vec();
        let ph = PrefixHashes::build_seq(&s, BASE);
        for i in 0..s.len() {
            for l in 0..=(s.len() - i) {
                assert_eq!(ph.substring(i, l), naive_hash(&s[i..i + l], BASE));
            }
        }
    }

    #[test]
    fn parallel_build_equals_sequential() {
        let mut rng = SplitMix64::new(42);
        let s: Vec<u8> = (0..5000).map(|_| (rng.next_below(26) + 97) as u8).collect();
        let pram = Pram::seq();
        let par = PrefixHashes::build(&pram, &s, BASE);
        let seq = PrefixHashes::build_seq(&s, BASE);
        assert_eq!(par.pre, seq.pre);
        assert_eq!(par.pows, seq.pows);
    }

    #[test]
    fn equal_substrings_have_equal_fingerprints() {
        let s = b"xyxyxyxyxy".to_vec();
        let ph = PrefixHashes::build_seq(&s, BASE);
        assert!(ph.eq_substrings(0, 2, 6)); // "xyxyxy" at 0 and 2
        assert!(ph.eq_substrings(0, 2, 8));
        assert!(!ph.eq_substrings(0, 1, 2)); // "xy" vs "yx"
    }

    #[test]
    fn concat_composes() {
        let s = b"hello world".to_vec();
        let ph = PrefixHashes::build_seq(&s, BASE);
        let left = ph.fingerprint(0, 5);
        let right = ph.fingerprint(5, 6);
        assert_eq!(left.concat(right), ph.fingerprint(0, 11));
        assert_eq!(Fingerprint::empty().concat(left), left);
        assert_eq!(left.concat(Fingerprint::empty()), left);
    }

    #[test]
    fn nul_bytes_are_distinguished() {
        // The +1 offset keeps "\0" distinct from "" and "\0\0".
        let s = vec![0u8, 0, 0];
        let ph = PrefixHashes::build_seq(&s, BASE);
        assert_ne!(ph.substring(0, 1), ph.substring(0, 0));
        assert_ne!(ph.substring(0, 1), ph.substring(0, 2));
    }

    #[test]
    fn empty_string_table() {
        let ph = PrefixHashes::build_seq(&[], BASE);
        assert_eq!(ph.len(), 0);
        assert!(ph.is_empty());
        assert_eq!(ph.substring(0, 0), 0);
    }
}
