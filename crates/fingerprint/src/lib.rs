#![warn(missing_docs)]

//! # pardict-fingerprint — Karp–Rabin fingerprints modulo 2⁶¹ − 1
//!
//! The paper's dictionary-matching algorithm compares strings "using
//! fingerprints [KR87]" during the separator-decomposition descent (Step 1A)
//! and marks pattern prefixes "by a table look-up using the fingerprints"
//! (Step 2A). This crate provides that primitive: a random-base polynomial
//! fingerprint over the Mersenne prime p = 2⁶¹ − 1, with
//!
//! * `O(n)`-work, `O(log n)`-depth parallel construction of prefix hashes
//!   (a PRAM scan under the fingerprint-composition monoid), and
//! * `O(1)` substring fingerprints thereafter.
//!
//! Fingerprint equality is Monte Carlo: two distinct equal-length strings
//! collide with probability ≤ n / 2⁶⁰ for a random base. The Las Vegas
//! algorithms in `pardict-core` keep this one-sided error in check with the
//! paper's §3.4 output checker.
//!
//! ```
//! use pardict_fingerprint::{random_base, PrefixHashes};
//!
//! let ph = PrefixHashes::build_seq(b"abracadabra", random_base(7));
//! assert!(ph.eq_substrings(0, 7, 4));   // "abra" == "abra"
//! assert!(!ph.eq_substrings(0, 1, 4));  // "abra" != "brac"
//! ```

mod mersenne;
mod prefix;

pub use mersenne::{m61_add, m61_mul, m61_pow, m61_sub, P61};
pub use prefix::{Fingerprint, PrefixHashes};

use pardict_pram::SplitMix64;

/// Draw a random fingerprint base in `[2, P61 - 2]` from a seed.
#[must_use]
pub fn random_base(seed: u64) -> u64 {
    let mut rng = SplitMix64::new(seed);
    2 + rng.next_below(P61 - 4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_base_in_range() {
        for seed in 0..100 {
            let b = random_base(seed);
            assert!((2..P61 - 1).contains(&b));
        }
    }

    #[test]
    fn random_base_varies_with_seed() {
        assert_ne!(random_base(1), random_base(2));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn modular_arithmetic_laws(a in 0u64..P61, b in 0u64..P61, c in 0u64..P61) {
            // Commutativity / associativity / distributivity spot checks.
            prop_assert_eq!(m61_add(a, b), m61_add(b, a));
            prop_assert_eq!(m61_mul(a, b), m61_mul(b, a));
            prop_assert_eq!(m61_mul(a, m61_mul(b, c)), m61_mul(m61_mul(a, b), c));
            prop_assert_eq!(
                m61_mul(a, m61_add(b, c)),
                m61_add(m61_mul(a, b), m61_mul(a, c))
            );
            prop_assert_eq!(m61_sub(m61_add(a, b), b), a);
        }

        #[test]
        fn equal_strings_equal_fingerprints(
            s in prop::collection::vec(any::<u8>(), 0..300),
            seed in 0u64..1000,
        ) {
            let base = random_base(seed);
            let doubled = [s.clone(), s.clone()].concat();
            let ph = PrefixHashes::build_seq(&doubled, base);
            prop_assert!(ph.eq_substrings(0, s.len(), s.len()));
            // Concatenation law.
            if !s.is_empty() {
                let half = s.len() / 2;
                let left = ph.fingerprint(0, half);
                let right = ph.fingerprint(half, s.len() - half);
                prop_assert_eq!(left.concat(right), ph.fingerprint(0, s.len()));
            }
        }

        #[test]
        fn different_strings_different_fingerprints(
            s in prop::collection::vec(any::<u8>(), 1..200),
            flip in 0usize..200,
            seed in 0u64..100,
        ) {
            // Not guaranteed in theory, but at 2^-60 collision probability a
            // failure here means a bug, not bad luck.
            let mut t = s.clone();
            let at = flip % s.len();
            t[at] ^= 1;
            let joined = [s.clone(), t].concat();
            let ph = PrefixHashes::build_seq(&joined, random_base(seed));
            prop_assert!(!ph.eq_substrings(0, s.len(), s.len()));
        }
    }
}
