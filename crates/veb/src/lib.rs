#![warn(missing_docs)]

//! # pardict-veb — van Emde Boas predecessor structure (Lemma 2.5)
//!
//! "A subset of numbers from the universe 1…N can be maintained under
//! insert, delete, extract maximum or minimum and find predecessor or
//! successor queries in O(log log N) time using O(s) space" [vEB77].
//!
//! The §3.2 nearest-colored-ancestor structure keys its real skeleton trees
//! by Euler-tour numbers and answers `Find(p, c)` with one predecessor and
//! one successor query here — that is where the `O(log log n)` query time of
//! the paper's space-efficient variant comes from.
//!
//! This implementation is the classic recursion (`√U` clusters + summary)
//! with lazily allocated clusters held in a hash map, giving the textbook
//! `O(log log U)` time per operation and `O(s log log U)` space for `s`
//! stored keys — matching the lemma's `O(s)` up to the usual hashing
//! indirection.
//!
//! ```
//! use pardict_veb::VebTree;
//!
//! let mut set = VebTree::with_universe(1 << 16);
//! set.insert(100);
//! set.insert(5000);
//! assert_eq!(set.successor(100), Some(5000));
//! assert_eq!(set.predecessor_or_equal(100), Some(100));
//! ```

use std::collections::HashMap;

/// A van Emde Boas tree over the universe `0 .. 2^ubits`.
#[derive(Debug, Clone)]
pub struct VebTree {
    ubits: u32,
    /// Minimum stored key; kept out of the clusters (the vEB trick that
    /// makes insert/delete single-recursion).
    min: Option<u32>,
    max: Option<u32>,
    summary: Option<Box<VebTree>>,
    clusters: HashMap<u32, VebTree>,
    len: usize,
}

impl VebTree {
    /// An empty tree over `0 .. 2^ubits` (1 ≤ ubits ≤ 32).
    #[must_use]
    pub fn new(ubits: u32) -> Self {
        assert!((1..=32).contains(&ubits), "ubits must be in 1..=32");
        Self {
            ubits,
            min: None,
            max: None,
            summary: None,
            clusters: HashMap::new(),
            len: 0,
        }
    }

    /// An empty tree big enough to hold keys `0..universe`.
    #[must_use]
    pub fn with_universe(universe: usize) -> Self {
        let bits = usize::BITS - universe.saturating_sub(1).leading_zeros();
        Self::new(bits.max(1))
    }

    fn high_bits(&self) -> u32 {
        self.ubits - self.ubits / 2
    }

    fn low_bits(&self) -> u32 {
        self.ubits / 2
    }

    fn high(&self, x: u32) -> u32 {
        x >> self.low_bits()
    }

    fn low(&self, x: u32) -> u32 {
        x & ((1u32 << self.low_bits()) - 1)
    }

    fn index(&self, h: u32, l: u32) -> u32 {
        (h << self.low_bits()) | l
    }

    /// Number of stored keys.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no key is stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Smallest stored key.
    #[must_use]
    pub fn min(&self) -> Option<u32> {
        self.min
    }

    /// Largest stored key.
    #[must_use]
    pub fn max(&self) -> Option<u32> {
        self.max
    }

    /// Membership test. O(log log U).
    #[must_use]
    pub fn contains(&self, x: u32) -> bool {
        if Some(x) == self.min || Some(x) == self.max {
            return true;
        }
        if self.ubits == 1 {
            return false;
        }
        self.clusters
            .get(&self.high(x))
            .is_some_and(|c| c.contains(self.low(x)))
    }

    /// Insert `x`; returns true if newly inserted. O(log log U).
    pub fn insert(&mut self, x: u32) -> bool {
        debug_assert!(self.ubits == 32 || x < (1u32 << self.ubits));
        if self.contains(x) {
            return false;
        }
        self.insert_new(x);
        true
    }

    fn insert_new(&mut self, mut x: u32) {
        self.len += 1;
        match self.min {
            None => {
                self.min = Some(x);
                self.max = Some(x);
                return;
            }
            Some(mn) => {
                if x < mn {
                    // Swap: the old min descends into a cluster.
                    self.min = Some(x);
                    x = mn;
                }
            }
        }
        if self.max.is_none_or(|m| x > m) {
            self.max = Some(x);
        }
        if self.ubits == 1 {
            return; // min/max fully describe a 2-element universe
        }
        let (h, l) = (self.high(x), self.low(x));
        let low_bits = self.low_bits();
        let high_bits = self.high_bits();
        let cluster = self
            .clusters
            .entry(h)
            .or_insert_with(|| VebTree::new(low_bits));
        if cluster.is_empty() {
            self.summary
                .get_or_insert_with(|| Box::new(VebTree::new(high_bits)))
                .insert(h);
        }
        cluster.insert_new(l);
    }

    /// Remove `x`; returns true if it was present. O(log log U).
    pub fn remove(&mut self, x: u32) -> bool {
        if !self.contains(x) {
            return false;
        }
        self.remove_present(x);
        true
    }

    fn remove_present(&mut self, mut x: u32) {
        self.len -= 1;
        if self.len == 0 {
            self.min = None;
            self.max = None;
            return;
        }
        if self.ubits == 1 {
            // Two keys were present (0 and 1); drop x.
            let other = 1 - x;
            self.min = Some(other);
            self.max = Some(other);
            return;
        }
        if Some(x) == self.min {
            // Pull the new minimum out of the clusters.
            let h = self
                .summary
                .as_ref()
                .and_then(|s| s.min())
                .expect("len > 0 means a cluster is non-empty");
            let l = self.clusters[&h].min().expect("summary tracks non-empty");
            let new_min = self.index(h, l);
            self.min = Some(new_min);
            x = new_min; // now delete it from the cluster below
        }
        let (h, l) = (self.high(x), self.low(x));
        let cluster = self.clusters.get_mut(&h).expect("present key has cluster");
        cluster.remove_present(l);
        if cluster.is_empty() {
            self.clusters.remove(&h);
            if let Some(s) = self.summary.as_mut() {
                s.remove(h);
                if s.is_empty() {
                    self.summary = None;
                }
            }
        }
        if Some(x) == self.max {
            // Recompute max from the highest remaining cluster.
            match self.summary.as_ref().and_then(|s| s.max()) {
                Some(h) => {
                    let l = self.clusters[&h].max().expect("non-empty");
                    self.max = Some(self.index(h, l));
                }
                None => self.max = self.min,
            }
        }
    }

    /// Smallest stored key strictly greater than `x`. O(log log U).
    #[must_use]
    pub fn successor(&self, x: u32) -> Option<u32> {
        if self.ubits == 1 {
            return match (x, self.max) {
                (0, Some(1)) => {
                    if self.contains(1) {
                        Some(1)
                    } else {
                        None
                    }
                }
                _ => None,
            };
        }
        if let Some(mn) = self.min {
            if x < mn {
                return Some(mn);
            }
        }
        let (h, l) = (self.high(x), self.low(x));
        // Inside x's own cluster?
        if let Some(c) = self.clusters.get(&h) {
            if c.max().is_some_and(|m| l < m) {
                let l2 = c.successor(l).expect("max > l implies successor");
                return Some(self.index(h, l2));
            }
        }
        // Otherwise: first key of the next non-empty cluster.
        let h2 = self.summary.as_ref()?.successor(h)?;
        let l2 = self.clusters[&h2].min().expect("summary tracks non-empty");
        Some(self.index(h2, l2))
    }

    /// Largest stored key strictly smaller than `x`. O(log log U).
    #[must_use]
    pub fn predecessor(&self, x: u32) -> Option<u32> {
        if let Some(mx) = self.max {
            if x > mx {
                return Some(mx);
            }
        }
        if self.ubits == 1 {
            return match (x, self.min) {
                (1, Some(0)) => Some(0),
                _ => None,
            };
        }
        let (h, l) = (self.high(x), self.low(x));
        if let Some(c) = self.clusters.get(&h) {
            if c.min().is_some_and(|m| l > m) {
                let l2 = c.predecessor(l).expect("min < l implies predecessor");
                return Some(self.index(h, l2));
            }
        }
        match self.summary.as_ref().and_then(|s| s.predecessor(h)) {
            Some(h2) => {
                let l2 = self.clusters[&h2].max().expect("non-empty");
                Some(self.index(h2, l2))
            }
            None => {
                // Only the (cluster-less) minimum can precede x.
                match self.min {
                    Some(mn) if mn < x => Some(mn),
                    _ => None,
                }
            }
        }
    }

    /// Largest stored key `<= x`. O(log log U).
    #[must_use]
    pub fn predecessor_or_equal(&self, x: u32) -> Option<u32> {
        if self.contains(x) {
            Some(x)
        } else {
            self.predecessor(x)
        }
    }

    /// Smallest stored key `>= x`. O(log log U).
    #[must_use]
    pub fn successor_or_equal(&self, x: u32) -> Option<u32> {
        if self.contains(x) {
            Some(x)
        } else {
            self.successor(x)
        }
    }

    /// Remove and return the minimum.
    pub fn extract_min(&mut self) -> Option<u32> {
        let mn = self.min?;
        self.remove_present(mn);
        Some(mn)
    }

    /// Remove and return the maximum.
    pub fn extract_max(&mut self) -> Option<u32> {
        let mx = self.max?;
        self.remove_present(mx);
        Some(mx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn basic_insert_query() {
        let mut v = VebTree::new(8);
        assert!(v.insert(5));
        assert!(v.insert(200));
        assert!(v.insert(0));
        assert!(!v.insert(5));
        assert_eq!(v.len(), 3);
        assert!(v.contains(5));
        assert!(!v.contains(6));
        assert_eq!(v.min(), Some(0));
        assert_eq!(v.max(), Some(200));
        assert_eq!(v.successor(5), Some(200));
        assert_eq!(v.predecessor(5), Some(0));
        assert_eq!(v.successor(200), None);
        assert_eq!(v.predecessor(0), None);
    }

    #[test]
    fn remove_and_extract() {
        let mut v = VebTree::new(10);
        for x in [4u32, 8, 15, 16, 23, 42] {
            v.insert(x);
        }
        assert!(v.remove(15));
        assert!(!v.remove(15));
        assert_eq!(v.successor(8), Some(16));
        assert_eq!(v.extract_min(), Some(4));
        assert_eq!(v.extract_max(), Some(42));
        assert_eq!(v.min(), Some(8));
        assert_eq!(v.max(), Some(23));
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn tiny_universe() {
        let mut v = VebTree::new(1);
        assert!(v.insert(0));
        assert!(v.insert(1));
        assert_eq!(v.successor(0), Some(1));
        assert_eq!(v.predecessor(1), Some(0));
        assert!(v.remove(0));
        assert_eq!(v.min(), Some(1));
        assert_eq!(v.successor(0), Some(1));
        assert!(v.remove(1));
        assert!(v.is_empty());
    }

    #[test]
    fn matches_btreeset_randomized() {
        use pardict_pram_testutil::SplitMix64;
        let mut rng = SplitMix64::new(99);
        let mut veb = VebTree::new(16);
        let mut set: BTreeSet<u32> = BTreeSet::new();
        for step in 0..20_000u32 {
            let x = rng.next_below(1 << 16) as u32;
            match step % 4 {
                0 | 1 => {
                    assert_eq!(veb.insert(x), set.insert(x));
                }
                2 => {
                    assert_eq!(veb.remove(x), set.remove(&x));
                }
                _ => {
                    assert_eq!(veb.contains(x), set.contains(&x));
                    assert_eq!(
                        veb.successor(x),
                        set.range(x + 1..).next().copied(),
                        "succ of {x}"
                    );
                    assert_eq!(
                        veb.predecessor(x),
                        set.range(..x).next_back().copied(),
                        "pred of {x}"
                    );
                }
            }
            assert_eq!(veb.len(), set.len());
            assert_eq!(veb.min(), set.first().copied());
            assert_eq!(veb.max(), set.last().copied());
        }
    }

    #[test]
    fn with_universe_sizes() {
        let v = VebTree::with_universe(1);
        assert_eq!(v.ubits, 1);
        let v = VebTree::with_universe(2);
        assert_eq!(v.ubits, 1);
        let v = VebTree::with_universe(3);
        assert_eq!(v.ubits, 2);
        let v = VebTree::with_universe(1 << 20);
        assert_eq!(v.ubits, 20);
        let mut v = VebTree::with_universe(1000);
        v.insert(999);
        assert!(v.contains(999));
    }

    #[test]
    fn predecessor_or_equal_and_successor_or_equal() {
        let mut v = VebTree::new(8);
        v.insert(10);
        v.insert(20);
        assert_eq!(v.predecessor_or_equal(10), Some(10));
        assert_eq!(v.predecessor_or_equal(15), Some(10));
        assert_eq!(v.predecessor_or_equal(9), None);
        assert_eq!(v.successor_or_equal(10), Some(10));
        assert_eq!(v.successor_or_equal(15), Some(20));
        assert_eq!(v.successor_or_equal(21), None);
    }

    /// Local copy of SplitMix64 to avoid a dev-dependency cycle.
    mod pardict_pram_testutil {
        pub struct SplitMix64 {
            state: u64,
        }
        impl SplitMix64 {
            pub fn new(seed: u64) -> Self {
                Self { state: seed }
            }
            pub fn next_u64(&mut self) -> u64 {
                self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = self.state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            }
            pub fn next_below(&mut self, bound: u64) -> u64 {
                ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    /// Scripted operations against a BTreeSet model.
    #[derive(Debug, Clone)]
    enum Op {
        Insert(u32),
        Remove(u32),
        Succ(u32),
        Pred(u32),
        ExtractMin,
        ExtractMax,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0u32..512).prop_map(Op::Insert),
            (0u32..512).prop_map(Op::Remove),
            (0u32..512).prop_map(Op::Succ),
            (0u32..512).prop_map(Op::Pred),
            Just(Op::ExtractMin),
            Just(Op::ExtractMax),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn veb_behaves_like_btreeset(ops in prop::collection::vec(op_strategy(), 1..300)) {
            let mut veb = VebTree::new(9);
            let mut model: BTreeSet<u32> = BTreeSet::new();
            for op in ops {
                match op {
                    Op::Insert(x) => prop_assert_eq!(veb.insert(x), model.insert(x)),
                    Op::Remove(x) => prop_assert_eq!(veb.remove(x), model.remove(&x)),
                    Op::Succ(x) => prop_assert_eq!(
                        veb.successor(x),
                        model.range(x + 1..).next().copied()
                    ),
                    Op::Pred(x) => prop_assert_eq!(
                        veb.predecessor(x),
                        model.range(..x).next_back().copied()
                    ),
                    Op::ExtractMin => {
                        let want = model.first().copied();
                        if let Some(w) = want {
                            model.remove(&w);
                        }
                        prop_assert_eq!(veb.extract_min(), want);
                    }
                    Op::ExtractMax => {
                        let want = model.last().copied();
                        if let Some(w) = want {
                            model.remove(&w);
                        }
                        prop_assert_eq!(veb.extract_max(), want);
                    }
                }
                prop_assert_eq!(veb.len(), model.len());
                prop_assert_eq!(veb.min(), model.first().copied());
                prop_assert_eq!(veb.max(), model.last().copied());
            }
        }
    }
}
