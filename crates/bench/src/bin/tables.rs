//! Regenerate every experiment table (E1–E11) from EXPERIMENTS.md.
//!
//! ```sh
//! cargo run --release -p pardict-bench --bin tables -- all
//! cargo run --release -p pardict-bench --bin tables -- e2 e4 --quick
//! ```
//!
//! The paper is an extended abstract with no empirical tables; these
//! experiments instead measure the *claims*: work-optimality (work/n flat),
//! logarithmic time (depth/log n flat), and the comparisons against the
//! implemented baselines. See DESIGN.md §4 for the index.

use pardict_bench::{per, per_log, sample};
use pardict_compress::{
    bfs_parse, encoded_size, greedy_parse, lff_parse, lz1_compress, lz1_decompress,
    lz1_nlogn_baseline, lz77_sequential, lz78_compress, optimal_parse,
};
use pardict_core::{
    dictionary_match, encode_binary, mp93_baseline, AhoCorasick, DictMatcher, Dictionary, Match,
    Matches,
};
use pardict_graph::{EulerTour, Forest};
use pardict_pram::{ceil_log2, list_rank_random_mate, list_rank_wyllie, Mode, Pram, SplitMix64};
use pardict_rmq::{ansv_par, LinearRmq, Side, Strictness};
use pardict_suffix::{suffix_array, SuffixTree};
use pardict_veb::VebTree;
use pardict_workloads::{
    dictionary_from_text, dna_text, fibonacci_word, markov_text, random_dictionary, random_text,
    repetitive_text, text_with_planted_matches, Alphabet,
};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let picks: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|a| a.to_lowercase())
        .collect();
    let want = |name: &str| picks.is_empty() || picks.iter().any(|p| p == name || p == "all");

    println!("# pardict experiment tables (quick = {quick})\n");
    if want("e1") {
        e1_preprocessing(quick);
    }
    if want("e2") {
        e2_matching(quick);
    }
    if want("e3") {
        e3_alphabets(quick);
    }
    if want("e4") {
        e4_lz1_compress(quick);
    }
    if want("e5") {
        e5_lz1_decompress(quick);
    }
    if want("e6") {
        e6_static(quick);
    }
    if want("e7") {
        e7_colored(quick);
    }
    if want("e8") {
        e8_checker(quick);
    }
    if want("e9") {
        e9_ratios(quick);
    }
    if want("e10") {
        e10_substrates(quick);
    }
    if want("e11") {
        e11_speedup(quick);
    }
    if want("e12") {
        e12_ablations(quick);
    }
    if want("e13") {
        e13_offline(quick);
    }
}

fn sizes(quick: bool, full: &[usize], small: &[usize]) -> Vec<usize> {
    if quick {
        small.to_vec()
    } else {
        full.to_vec()
    }
}

// --- E1: Theorem 3.1 preprocessing --------------------------------------
fn e1_preprocessing(quick: bool) {
    println!("## E1 — dictionary preprocessing (Thm 3.1: O(d) work*, O(log d) time)");
    println!("*(our separator build carries an extra log d; see DESIGN.md)\n");
    println!("| d | work | work/d | work/(d log d) | depth | depth/log d |");
    println!("|---|------|--------|-----------------|-------|-------------|");
    let ds = sizes(
        quick,
        &[1 << 12, 1 << 14, 1 << 16, 1 << 17],
        &[1 << 12, 1 << 14],
    );
    let mut breakdowns = Vec::new();
    for &d in &ds {
        let k = d / 8;
        let dict = Dictionary::new(random_dictionary(d as u64, k, 4, 12, Alphabet::dna()));
        let dd = dict.total_len();
        let pram = Pram::seq();
        let ((_, profile), s) = sample(&pram, |p| DictMatcher::build_profiled(p, dict.clone(), 1));
        breakdowns.push((dd, profile));
        let lg = f64::from(ceil_log2(dd));
        println!(
            "| {dd} | {} | {:.1} | {:.2} | {} | {:.1} |",
            s.cost.work,
            per(s.cost.work, dd),
            per(s.cost.work, dd) / lg,
            s.cost.depth,
            per_log(s.cost.depth, dd)
        );
    }

    // Stage breakdown: which component carries the log factor?
    println!("\nwork/d by preprocessing stage:\n");
    print!("| d |");
    for (name, _) in &breakdowns[0].1 {
        print!(" {name} |");
    }
    println!();
    print!("|---|");
    for _ in &breakdowns[0].1 {
        print!("---|");
    }
    println!();
    for (dd, profile) in &breakdowns {
        print!("| {dd} |");
        for (_, c) in profile {
            print!(" {:.1} |", per(c.work, *dd));
        }
        println!();
    }
    println!();
}

// --- E2: Theorem 3.1 matching vs baselines -------------------------------
fn e2_matching(quick: bool) {
    println!("## E2 — text matching (Thm 3.1: O(n) work, O(log d) time)");
    let alpha = Alphabet::dna();
    let dict = Dictionary::new(random_dictionary(7, 2048, 4, 12, alpha));
    let pram = Pram::seq();
    let matcher = DictMatcher::build(&pram, dict.clone(), 8);
    println!("\nfixed dictionary d = {}:\n", dict.total_len());
    println!("| n | opt work/n | opt depth | mp93 work/n | AC wall ms |");
    println!("|---|------------|-----------|-------------|------------|");
    let ac = AhoCorasick::build(&dict);
    for n in sizes(
        quick,
        &[1 << 12, 1 << 14, 1 << 16, 1 << 18],
        &[1 << 12, 1 << 14],
    ) {
        let text = text_with_planted_matches(n as u64, dict.patterns(), n, 25, alpha);
        let p1 = Pram::seq();
        let (_, s_opt) = sample(&p1, |p| matcher.match_text(p, &text));
        let p2 = Pram::seq();
        let (_, s_mp) = sample(&p2, |p| mp93_baseline(p, &dict, &text, 3));
        let t0 = Instant::now();
        let _ = ac.match_text(&text);
        let ac_ms = t0.elapsed().as_secs_f64() * 1e3;
        println!(
            "| {n} | {:.1} | {} | {:.1} | {:.2} |",
            per(s_opt.cost.work, n),
            s_opt.cost.depth,
            per(s_mp.cost.work, n),
            ac_ms
        );
    }

    println!("\npattern-length sweep (n = 2^15; the baseline's log m shows):\n");
    println!("| m | opt work/n | mp93 work/n |");
    println!("|---|------------|-------------|");
    let n = 1 << 15;
    for mexp in sizes(quick, &[3, 6, 9, 12], &[3, 9]) {
        let m = 1usize << mexp;
        let dict = Dictionary::new(random_dictionary(9, 8192 / m.max(8), m, m, alpha));
        let pram = Pram::seq();
        let matcher = DictMatcher::build(&pram, dict.clone(), 10);
        let text = text_with_planted_matches(11, dict.patterns(), n, 20, alpha);
        let p1 = Pram::seq();
        let (_, s_opt) = sample(&p1, |p| matcher.match_text(p, &text));
        let p2 = Pram::seq();
        let (_, s_mp) = sample(&p2, |p| mp93_baseline(p, &dict, &text, 3));
        println!(
            "| {m} | {:.1} | {:.1} |",
            per(s_opt.cost.work, n),
            per(s_mp.cost.work, n)
        );
    }
    println!();
}

// --- E3: alphabet scaling (Thms 3.1/3.2/3.3) ------------------------------
fn e3_alphabets(quick: bool) {
    println!("## E3 — alphabet-size scaling (Thms 3.1–3.3)");
    println!("\n| σ | direct work/n | colored | binary-encoded work/symbol (×log σ) |");
    println!("|---|----------------|---------|--------------------------------------|");
    let n = if quick { 1 << 12 } else { 1 << 15 };
    for sigma in [2u16, 4, 16, 64] {
        let alpha = Alphabet::sized(sigma);
        let patterns = random_dictionary(5, 64, 4, 10, alpha);
        let text = text_with_planted_matches(6, &patterns, n, 25, alpha);
        // Direct matching on the σ-ary alphabet.
        let pram = Pram::seq();
        let dict = Dictionary::new(patterns.clone());
        let matcher = DictMatcher::build(&pram, dict, 7);
        let variant = if matcher.substring_matcher().alphabet_size() <= 8 {
            "naive"
        } else {
            "vEB"
        };
        let p1 = Pram::seq();
        let (_, s_dir) = sample(&p1, |p| matcher.match_text(p, &text));
        // Theorem 3.3 route: binary encode (log σ blow-up), then match.
        // Symbols are bytes 1..=σ, so a span of σ+1 values suffices.
        let span = usize::from(sigma) + 1;
        let enc_pats: Vec<Vec<u8>> = patterns
            .iter()
            .map(|p| encode_binary(p, span).data)
            .collect();
        let enc = encode_binary(&text, span);
        let pram = Pram::seq();
        let enc_dict = Dictionary::new(enc_pats);
        let enc_matcher = DictMatcher::build(&pram, enc_dict, 8);
        let p2 = Pram::seq();
        let (_, s_enc) = sample(&p2, |p| enc_matcher.match_text(p, &enc.data));
        println!(
            "| {sigma} | {:.1} | {variant} | {:.1} |",
            per(s_dir.cost.work, n),
            per(s_enc.cost.work, n), // per ORIGINAL symbol
        );
    }
    println!();
}

// --- E4: LZ1 compression (Thm 4.2) ---------------------------------------
fn e4_lz1_compress(quick: bool) {
    use pardict_compress::longest_previous_factor_from_tree;
    println!("## E4 — LZ1 compression (Thm 4.2: O(n) work, O(log n) time)");
    println!("\n| n | work/n | depth/log n | baseline work/n | seq wall ms |");
    println!("|---|--------|--------------|------------------|--------------|");
    for n in sizes(
        quick,
        &[1 << 12, 1 << 14, 1 << 16, 1 << 17],
        &[1 << 12, 1 << 14],
    ) {
        let text = markov_text(n as u64, n, Alphabet::dna());
        let p1 = Pram::seq();
        let (_, s) = sample(&p1, |p| lz1_compress(p, &text, 1));
        let p2 = Pram::seq();
        let (_, sb) = sample(&p2, |p| lz1_nlogn_baseline(p, &text, 2));
        let t0 = Instant::now();
        let _ = lz77_sequential(&text);
        let seq_ms = t0.elapsed().as_secs_f64() * 1e3;
        println!(
            "| {n} | {:.1} | {:.1} | {:.1} | {:.1} |",
            per(s.cost.work, n),
            per_log(s.cost.depth, n),
            per(sb.cost.work, n),
            seq_ms
        );
    }

    // Isolate the match-table computation: both routes share the suffix
    // tree, whose construction dominates the totals above; the work-optimal
    // vs n·log n distinction lives in what comes after.
    println!("\nmatch-table only (tree pre-built, not charged):\n");
    println!("| n | Lemma 4.1 work/n | SA-binary-search work/n (per-position log n) |");
    println!("|---|-------------------|------------------------------------------------|");
    for n in sizes(
        quick,
        &[1 << 12, 1 << 14, 1 << 16, 1 << 17],
        &[1 << 12, 1 << 14],
    ) {
        let text = markov_text(n as u64, n, Alphabet::dna());
        let pram = Pram::seq();
        let st = SuffixTree::build(&pram, &text, 5);
        let p1 = Pram::seq();
        let (_, s_opt) = sample(&p1, |p| longest_previous_factor_from_tree(p, &st));
        // Baseline post-tree work: its per-position binary searches over
        // sparse tables. Measure by re-running it and subtracting a fresh
        // tree build.
        let p2 = Pram::seq();
        let (_, s_tree) = sample(&p2, |p| SuffixTree::build(p, &text, 6));
        let p3 = Pram::seq();
        let (_, s_base) = sample(&p3, |p| lz1_nlogn_baseline(p, &text, 6));
        let base_post = s_base.cost.work.saturating_sub(s_tree.cost.work);
        println!(
            "| {n} | {:.1} | {:.1} |",
            per(s_opt.cost.work, n),
            per(base_post, n)
        );
    }
    println!();
}

// --- E5: LZ1 uncompression (Thm 4.3) --------------------------------------
fn e5_lz1_decompress(quick: bool) {
    println!("## E5 — LZ1 uncompression (Thm 4.3: O(n) work, O(log n) time)");
    println!("\n| n | tokens | work/n | depth | depth/log n |");
    println!("|---|--------|--------|-------|--------------|");
    for n in sizes(
        quick,
        &[1 << 12, 1 << 14, 1 << 16, 1 << 17],
        &[1 << 12, 1 << 14],
    ) {
        let text = repetitive_text(n as u64, n, Alphabet::dna());
        let pram = Pram::seq();
        let tokens = lz1_compress(&pram, &text, 1);
        let p1 = Pram::seq();
        let (back, s) = sample(&p1, |p| lz1_decompress(p, &tokens, 2));
        assert_eq!(back, text);
        println!(
            "| {n} | {} | {:.1} | {} | {:.1} |",
            tokens.len(),
            per(s.cost.work, n),
            s.cost.depth,
            per_log(s.cost.depth, n)
        );
    }
    println!();
}

// --- E6: static optimal parsing (Thm 5.3) ----------------------------------
fn e6_static(quick: bool) {
    println!("## E6 — optimal static parsing (Thm 5.3: O(n) work)");
    let alpha = Alphabet::dna();
    let training = markov_text(1, 20_000, alpha);
    let mut words: Vec<Vec<u8>> = (0..alpha.size()).map(|i| vec![alpha.symbol(i)]).collect();
    words.extend(dictionary_from_text(2, &training, 80, 3, 12));
    let dict = Dictionary::new(words);
    let pram = Pram::seq();
    let matcher = DictMatcher::build(&pram, dict.clone(), 3);
    println!("\n| n | optimal | greedy | LFF | opt work/n | BFS work/n |");
    println!("|---|---------|--------|-----|-------------|-------------|");
    for n in sizes(
        quick,
        &[1 << 11, 1 << 13, 1 << 15, 1 << 17],
        &[1 << 11, 1 << 13],
    ) {
        let msg = markov_text(50 + n as u64, n, alpha);
        let p1 = Pram::seq();
        let (opt, s_opt) = sample(&p1, |p| optimal_parse(p, &matcher, &msg));
        let p2 = Pram::seq();
        let (bfs, s_bfs) = sample(&p2, |p| bfs_parse(p, &matcher, &msg));
        let greedy = greedy_parse(&pram, &matcher, &msg).unwrap();
        let lff = lff_parse(&pram, &matcher, &msg).unwrap();
        let (opt, bfs) = (opt.unwrap(), bfs.unwrap());
        assert_eq!(opt.num_phrases(), bfs.num_phrases());
        println!(
            "| {n} | {} | {} | {} | {:.1} | {:.1} |",
            opt.num_phrases(),
            greedy.num_phrases(),
            lff.num_phrases(),
            per(s_opt.cost.work, n),
            per(s_bfs.cost.work, n)
        );
    }

    // Word-length sweep: BFS explores Θ(Σ M[i]) edges, so its work grows
    // with the match length while the dominating-edge route stays flat —
    // the transitive-closure bottleneck §5 sidesteps.
    println!("\nword-length sweep (n = 2^13, periodic corpus — every position");
    println!("matches ~max-word characters, so BFS edge counts explode):\n");
    println!("| max word | opt work/n | BFS work/n |");
    println!("|----------|-------------|-------------|");
    let n = 1 << 13;
    for wl in sizes(quick, &[8, 32, 128, 512], &[8, 64]) {
        let corpus = pardict_workloads::periodic_text(b"ACGTA", 4 * n);
        let mut words: Vec<Vec<u8>> = (0..alpha.size()).map(|i| vec![alpha.symbol(i)]).collect();
        words.extend(dictionary_from_text(78, &corpus, 40, 2, wl));
        let dict = Dictionary::new(words);
        let pram = Pram::seq();
        let matcher = DictMatcher::build(&pram, dict, 79);
        let msg = corpus[n..2 * n].to_vec();
        let p1 = Pram::seq();
        let (o, s_opt) = sample(&p1, |p| optimal_parse(p, &matcher, &msg));
        let p2 = Pram::seq();
        let (b, s_bfs) = sample(&p2, |p| bfs_parse(p, &matcher, &msg));
        assert_eq!(o.unwrap().num_phrases(), b.unwrap().num_phrases());
        println!(
            "| {wl} | {:.1} | {:.1} |",
            per(s_opt.cost.work, n),
            per(s_bfs.cost.work, n)
        );
    }
    println!();
}

// --- E7: nearest colored ancestors (§3.2) ----------------------------------
fn e7_colored(quick: bool) {
    use pardict_ancestors::{ColoredAncestors, ColoredAncestorsNaive};
    println!("## E7 — §3.2 colored ancestors: naive O(n·|C|) vs vEB O(n + C)");
    let n = if quick { 1 << 13 } else { 1 << 16 };
    let mut rng = SplitMix64::new(9);
    let parent: Vec<usize> = (0..n)
        .map(|v: usize| {
            if v == 0 {
                0
            } else {
                rng.next_below(v as u64) as usize
            }
        })
        .collect();
    println!("\ntree n = {n}:\n");
    println!("| |C| (distinct) | naive build work | vEB build work | naive q ns | vEB q ns |");
    println!("|----------------|-------------------|-----------------|------------|-----------|");
    for ncolors in [2u64, 8, 32, 128] {
        let mut colors = Vec::new();
        for v in 0..n {
            if rng.next_below(2) == 0 {
                colors.push((v, rng.next_below(ncolors) as u32));
            }
        }
        let p1 = Pram::seq();
        let f1 = Forest::from_parents(&p1, &parent);
        let (naive, s_naive) = sample(&p1, |p| ColoredAncestorsNaive::build(p, &f1, &colors, 1));
        let p2 = Pram::seq();
        let f2 = Forest::from_parents(&p2, &parent);
        let (fast, s_fast) = sample(&p2, |p| ColoredAncestors::build(p, &f2, &colors, 1));
        // Query timing.
        let queries: Vec<(usize, u32)> = (0..20_000)
            .map(|_| {
                (
                    rng.next_below(n as u64) as usize,
                    rng.next_below(ncolors) as u32,
                )
            })
            .collect();
        let t0 = Instant::now();
        let mut acc = 0usize;
        for &(p, c) in &queries {
            acc ^= naive.find(p, c).unwrap_or(0);
        }
        let t_naive = t0.elapsed().as_nanos() as f64 / queries.len() as f64;
        let t0 = Instant::now();
        for &(p, c) in &queries {
            acc ^= fast.find(p, c).unwrap_or(0);
        }
        let t_fast = t0.elapsed().as_nanos() as f64 / queries.len() as f64;
        std::hint::black_box(acc);
        println!(
            "| {ncolors} | {} | {} | {t_naive:.0} | {t_fast:.0} |",
            s_naive.cost.work, s_fast.cost.work
        );
    }
    println!();
}

// --- E8: the §3.4 checker -----------------------------------------------
fn e8_checker(quick: bool) {
    println!("## E8 — §3.4 Las Vegas checker");
    let trials = if quick { 10 } else { 50 };
    let alpha = Alphabet::dna();
    let pram = Pram::seq();
    let dict = Dictionary::new(random_dictionary(1, 20, 3, 9, alpha));
    let matcher = DictMatcher::build(&pram, dict.clone(), 2);
    let n = if quick { 1 << 12 } else { 1 << 15 };
    let text = text_with_planted_matches(3, dict.patterns(), n, 30, alpha);
    let good = matcher.match_text(&pram, &text);
    let p1 = Pram::seq();
    let (ok, s) = sample(&p1, |p| matcher.check(p, &text, &good).is_ok());
    assert!(ok);
    println!(
        "\nchecker work/n on clean output: {:.1} (depth {})",
        per(s.cost.work, n),
        s.cost.depth
    );

    // Corruption trials: claim a random pattern at a random position.
    let mut rng = SplitMix64::new(4);
    let mut caught = 0;
    let mut harmless = 0;
    for _ in 0..trials {
        let i = rng.next_below((n - dict.max_pattern_len()) as u64) as usize;
        let t = rng.next_below(dict.num_patterns() as u64) as usize;
        let plen = dict.pattern_len(t);
        let really_occurs = &text[i..i + plen] == dict.patterns()[t].as_slice();
        let mut v = good.as_slice().to_vec();
        v[i] = Some(Match {
            id: t as u32,
            len: plen as u32,
        });
        let verdict = matcher.check(&pram, &text, &Matches::new(v));
        if really_occurs {
            harmless += 1; // the claim is true; acceptance is fine either way
        } else if verdict.is_err() {
            caught += 1;
        } else {
            println!("  !! corruption at {i} (pattern {t}) NOT caught");
        }
    }
    println!(
        "corruption trials: {trials}, true-claims (harmless): {harmless}, false claims caught: {caught}/{}",
        trials - harmless
    );
    println!();
}

// --- E9: parse-quality / ratio table ---------------------------------------
fn e9_ratios(quick: bool) {
    println!("## E9 — parse quality across corpora");
    let n = if quick { 1 << 13 } else { 1 << 16 };
    println!("\ncorpus size n = {n}; sizes via varint token encoding:\n");
    println!("| corpus | LZ1 phrases | LZ78 phrases | LZ1 bytes | ratio |");
    println!("|--------|-------------|---------------|-----------|-------|");
    let corpora: Vec<(&str, Vec<u8>)> = vec![
        ("uniform(26)", random_text(1, n, Alphabet::lowercase())),
        ("markov(26)", markov_text(2, n, Alphabet::lowercase())),
        ("dna-repeats", dna_text(3, n)),
        ("repetitive", repetitive_text(4, n, Alphabet::dna())),
        ("fibonacci", fibonacci_word(n)),
    ];
    for (name, text) in corpora {
        let pram = Pram::seq();
        let tokens = lz1_compress(&pram, &text, 5);
        let lz78 = lz78_compress(&text);
        let bytes = encoded_size(&tokens);
        println!(
            "| {name} | {} | {} | {} | {:.2} |",
            tokens.len(),
            lz78.len(),
            bytes,
            bytes as f64 / text.len() as f64
        );
    }
    println!();
}

// --- E10: substrate bounds (Lemmas 2.1–2.7) --------------------------------
fn e10_substrates(quick: bool) {
    println!("## E10 — substrate work/depth (Lemmas 2.1–2.7)");
    println!("\n| primitive | n | work/n | depth | depth/log n |");
    println!("|-----------|---|--------|-------|--------------|");
    let ns = sizes(quick, &[1 << 14, 1 << 16, 1 << 18], &[1 << 12, 1 << 14]);
    for &n in &ns {
        let mut rng = SplitMix64::new(7);
        // scan
        let xs: Vec<u64> = (0..n as u64).collect();
        let pram = Pram::seq();
        let (_, s) = sample(&pram, |p| p.scan_exclusive_sum(&xs));
        row("scan (prefix sums)", n, s.cost);
        // list ranking
        let mut perm: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            perm.swap(i, rng.next_below(i as u64 + 1) as usize);
        }
        let mut next = vec![0usize; n];
        for w in perm.windows(2) {
            next[w[0]] = w[1];
        }
        next[perm[n - 1]] = perm[n - 1];
        let pram = Pram::seq();
        let (_, s) = sample(&pram, |p| list_rank_wyllie(p, &next));
        row("list rank (Wyllie)", n, s.cost);
        let pram = Pram::seq();
        let (_, s) = sample(&pram, |p| list_rank_random_mate(p, &next, 3));
        row("list rank (random-mate)", n, s.cost);
        // Euler tour (Lemma 2.7 machinery)
        let parent: Vec<usize> = (0..n)
            .map(|v: usize| {
                if v == 0 {
                    0
                } else {
                    rng.next_below(v as u64) as usize
                }
            })
            .collect();
        let pram = Pram::seq();
        let forest = Forest::from_parents(&pram, &parent);
        let (_, s) = sample(&pram, |p| EulerTour::build(p, &forest, 5));
        row("Euler tour", n, s.cost);
        // ANSV (Lemma 2.4)
        let vals: Vec<i64> = (0..n).map(|_| rng.next_below(1000) as i64).collect();
        let pram = Pram::seq();
        let (_, s) = sample(&pram, |p| {
            ansv_par(p, &vals, Side::Left, Strictness::Strict)
        });
        row("ANSV (blocked)", n, s.cost);
        // Linear RMQ (Lemma 2.3)
        let pram = Pram::seq();
        let (_, s) = sample(&pram, |p| LinearRmq::new_min(p, &vals, 6));
        row("linear RMQ", n, s.cost);
        // Suffix array + tree (Lemma 2.1)
        let text = random_text(8, n, Alphabet::dna());
        let pram = Pram::seq();
        let (_, s) = sample(&pram, |p| suffix_array(p, &text));
        row("suffix array (DC3)", n, s.cost);
        let pram = Pram::seq();
        let (_, s) = sample(&pram, |p| SuffixTree::build(p, &text, 9));
        row("suffix tree", n, s.cost);
        // vEB ops (Lemma 2.5) — wall clock per op.
        let mut veb = VebTree::with_universe(n);
        let t0 = Instant::now();
        let mut acc = 0u32;
        for _ in 0..n {
            let x = rng.next_below(n as u64) as u32;
            veb.insert(x);
            acc ^= veb.successor(x / 2).unwrap_or(0);
        }
        std::hint::black_box(acc);
        let ns_per = t0.elapsed().as_nanos() as f64 / (2 * n) as f64;
        println!("| vEB insert+succ (wall) | {n} | {ns_per:.0} ns/op | — | — |");
    }
    println!();
}

fn row(name: &str, n: usize, c: pardict_pram::Cost) {
    println!(
        "| {name} | {n} | {:.1} | {} | {:.1} |",
        per(c.work, n),
        c.depth,
        per_log(c.depth, n)
    );
}

// --- E12: design-choice ablations -------------------------------------------
fn e12_ablations(quick: bool) {
    use pardict_compress::{lz1_decompress_jump, lz77_windowed};
    use pardict_suffix::suffix_array_doubling;

    println!("## E12 — ablations of the design choices DESIGN.md calls out");

    // (a) Suffix array: DC3 (linear work) vs prefix doubling (n log n).
    println!("\n### suffix array construction: DC3 vs prefix doubling\n");
    println!("| n | DC3 work/n | doubling work/n | ratio |");
    println!("|---|-------------|------------------|-------|");
    for n in sizes(quick, &[1 << 12, 1 << 14, 1 << 16], &[1 << 12, 1 << 14]) {
        let text = random_text(3, n, Alphabet::dna());
        let p1 = Pram::seq();
        let (_, s1) = sample(&p1, |p| suffix_array(p, &text));
        let p2 = Pram::seq();
        let (_, s2) = sample(&p2, |p| suffix_array_doubling(p, &text));
        println!(
            "| {n} | {:.1} | {:.1} | {:.2} |",
            per(s1.cost.work, n),
            per(s2.cost.work, n),
            s2.cost.work as f64 / s1.cost.work as f64
        );
    }

    // (b) Uncompression: Euler-tour root resolution vs pointer jumping on
    // maximally deep copy chains (all-equal text).
    println!("\n### LZ1 uncompression: Euler tour vs pointer jumping (deep chains)\n");
    println!("| n | euler work/n | jump work/n |");
    println!("|---|---------------|--------------|");
    for n in sizes(quick, &[1 << 10, 1 << 13, 1 << 16], &[1 << 10, 1 << 13]) {
        let text = vec![b'z'; n];
        let pram = Pram::seq();
        let tokens = lz1_compress(&pram, &text, 1);
        let p1 = Pram::seq();
        let (_, s1) = sample(&p1, |p| lz1_decompress(p, &tokens, 2));
        let p2 = Pram::seq();
        let (_, s2) = sample(&p2, |p| lz1_decompress_jump(p, &tokens));
        println!(
            "| {n} | {:.1} | {:.1} |",
            per(s1.cost.work, n),
            per(s2.cost.work, n)
        );
    }
    println!("\n(pointer jumping's work/char grows with chain depth — its log factor —");
    println!("while the Euler route is flat; at laptop sizes the doubling constant is");
    println!("still smaller, which is exactly the kind of fact the ledger exposes.)");

    // (c) Rootfix (heavy-path rounds) vs pointer doubling for root-path
    // maxima — the Step 2A choice.
    println!("\n### root-path maxima: heavy-path rootfix vs pointer doubling\n");
    println!("| n | rootfix work/n | doubling work/n |");
    println!("|---|----------------|------------------|");
    for n in sizes(quick, &[1 << 12, 1 << 14, 1 << 16], &[1 << 12, 1 << 14]) {
        let mut rng = SplitMix64::new(13);
        let parent: Vec<usize> = (0..n)
            .map(|v: usize| {
                if v == 0 {
                    0
                } else {
                    rng.next_below(v as u64) as usize
                }
            })
            .collect();
        let values: Vec<i64> = (0..n).map(|_| rng.next_below(1000) as i64).collect();
        let p1 = Pram::seq();
        let f = Forest::from_parents(&p1, &parent);
        let tour = EulerTour::build(&p1, &f, 3);
        let (rf, s1) = sample(&p1, |p| {
            pardict_graph::rootfix(p, &f, &tour, &values, i64::MIN, |a, b| a.max(b), 4)
        });
        // Pointer doubling.
        let p2 = Pram::seq();
        let (dbl, s2) = sample(&p2, |p| {
            let mut best = values.clone();
            let mut up = parent.clone();
            for _ in 0..=ceil_log2(n) {
                let nb: Vec<i64> = p.tabulate(n, |v| best[v].max(best[up[v]]));
                let nu: Vec<usize> = p.tabulate(n, |v| up[up[v]]);
                best = nb;
                up = nu;
            }
            best
        });
        assert_eq!(rf, dbl);
        println!(
            "| {n} | {:.1} | {:.1} |",
            per(s1.cost.work, n),
            per(s2.cost.work, n)
        );
    }

    // (d) Windowed LZ77: compression quality vs window size.
    println!("\n### windowed LZ77 (gzip-style practical variant)\n");
    println!("| window | phrases | vs unbounded |");
    println!("|--------|---------|---------------|");
    let n = if quick { 1 << 13 } else { 1 << 16 };
    let text = repetitive_text(7, n, Alphabet::dna());
    let unbounded = lz77_windowed(&text, usize::MAX).len();
    for w in [64usize, 1024, 16384, usize::MAX] {
        let k = lz77_windowed(&text, w).len();
        let label = if w == usize::MAX {
            "∞".to_string()
        } else {
            w.to_string()
        };
        println!("| {label} | {k} | {:.2}x |", k as f64 / unbounded as f64);
    }
    println!();
}

// --- E13: online vs offline matching -----------------------------------------
fn e13_offline(quick: bool) {
    use pardict_core::dictionary_match_offline;
    println!("## E13 — online (Las Vegas) vs offline (deterministic) matching");
    println!("\nThe online model preprocesses D̂ once and pays O(n) per text; the");
    println!("offline route builds a joint suffix tree per (dictionary, text) pair —");
    println!("deterministic, but it re-pays O(d + n) every time.\n");
    println!("| n | online match work/n | offline total work/(d+n) | agree |");
    println!("|---|----------------------|----------------------------|-------|");
    let alpha = Alphabet::dna();
    let dict = Dictionary::new(random_dictionary(3, 512, 4, 12, alpha));
    let pram = Pram::seq();
    let matcher = DictMatcher::build(&pram, dict.clone(), 4);
    for n in sizes(quick, &[1 << 12, 1 << 14, 1 << 16], &[1 << 12, 1 << 14]) {
        let text = text_with_planted_matches(n as u64, dict.patterns(), n, 25, alpha);
        let p1 = Pram::seq();
        let (on, s_on) = sample(&p1, |p| matcher.match_text(p, &text));
        let p2 = Pram::seq();
        let (off, s_off) = sample(&p2, |p| dictionary_match_offline(p, &dict, &text).unwrap());
        let agree = (0..n).all(|i| on.get(i).map(|m| m.len) == off.get(i).map(|m| m.len));
        println!(
            "| {n} | {:.1} | {:.1} | {agree} |",
            per(s_on.cost.work, n),
            per(s_off.cost.work, n + dict.total_len()),
        );
    }
    println!();
}

// --- E11: rayon wall-clock sanity ------------------------------------------
fn e11_speedup(quick: bool) {
    println!("## E11 — Seq vs Par wall-clock (rayon backend sanity)");
    let n = if quick { 1 << 14 } else { 1 << 17 };
    let threads = std::thread::available_parallelism().map_or(1, |t| t.get());
    println!("\navailable parallelism: {threads} thread(s)\n");
    println!("| task | n | Seq wall ms | Par wall ms |");
    println!("|------|---|--------------|--------------|");
    let text = markov_text(1, n, Alphabet::dna());
    for (name, mode_runs) in [("LZ1 compress", true), ("dictionary match", false)] {
        let mut walls = Vec::new();
        for mode in [Mode::Seq, Mode::Par] {
            let pram = Pram::new(mode);
            let t0 = Instant::now();
            if mode_runs {
                let _ = lz1_compress(&pram, &text, 3);
            } else {
                let dict = Dictionary::new(random_dictionary(5, 256, 4, 12, Alphabet::dna()));
                let _ = dictionary_match(&pram, &dict, &text, 6);
            }
            walls.push(t0.elapsed().as_secs_f64() * 1e3);
        }
        println!("| {name} | {n} | {:.1} | {:.1} |", walls[0], walls[1]);
    }
    println!("\n(on a single-core host the two columns coincide; the PRAM ledger is");
    println!("identical in both modes by construction.)");
    println!();
}
