//! # pardict-bench — the experiment harness
//!
//! Two entry points:
//!
//! * `cargo run --release -p pardict-bench --bin tables -- all [--quick]`
//!   regenerates every experiment table in EXPERIMENTS.md (E1–E11): ledger
//!   work/depth measurements plus wall-clock timings.
//! * `cargo bench -p pardict-bench` runs the Criterion wall-clock benches
//!   (one group per paper result).

use pardict_pram::{Cost, Pram};
use std::time::Instant;

/// Wall-clock + ledger measurement of one run.
#[derive(Debug, Clone, Copy)]
pub struct Sample {
    /// Ledger cost of the run.
    pub cost: Cost,
    /// Wall-clock duration in milliseconds.
    pub wall_ms: f64,
}

/// Run `f` against `pram` and capture both ledger cost and wall time.
pub fn sample<R>(pram: &Pram, f: impl FnOnce(&Pram) -> R) -> (R, Sample) {
    let t0 = Instant::now();
    let (r, cost) = pram.metered(f);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    (r, Sample { cost, wall_ms })
}

/// Work (or any count) per element.
#[must_use]
pub fn per(x: u64, n: usize) -> f64 {
    x as f64 / n as f64
}

/// Depth normalized by `log2 n`.
#[must_use]
pub fn per_log(x: u64, n: usize) -> f64 {
    x as f64 / f64::from(pardict_pram::ceil_log2(n.max(2)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_measures() {
        let pram = Pram::seq();
        let (_, s) = sample(&pram, |p| p.tabulate(1000, |i| i));
        assert_eq!(s.cost.work, 1000);
        assert!(s.wall_ms >= 0.0);
        assert!((per(1000, 500) - 2.0).abs() < 1e-9);
        assert!(per_log(20, 1 << 10) > 1.9);
    }
}
