//! Criterion wall-clock benches for the serving layer: publish (cold build
//! vs preprocessing-cache hit), and request throughput through the batched
//! engine vs direct library calls — the operational face of the §3
//! "preprocess once, match many" amortization.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pardict_core::{dictionary_match, Dictionary};
use pardict_pram::Pram;
use pardict_service::{Engine, EngineConfig, Metrics, OpRequest, Registry, Request};
use pardict_workloads::{random_dictionary, text_with_planted_matches, Alphabet};
use std::sync::Arc;

fn service_engine(workers: usize) -> Engine {
    let metrics = Arc::new(Metrics::default());
    let registry = Arc::new(Registry::new(Arc::clone(&metrics)));
    Engine::new(
        EngineConfig {
            workers,
            queue_depth: 4096,
            max_batch: 32,
            seq_threshold: 512,
            stream_threshold: 1 << 16,
        },
        registry,
        metrics,
    )
}

fn bench_publish(c: &mut Criterion) {
    let mut g = c.benchmark_group("service_publish");
    g.sample_size(10);
    let patterns = random_dictionary(3, 512, 4, 12, Alphabet::dna());

    g.bench_with_input(BenchmarkId::new("cold", 512), &patterns, |b, pats| {
        b.iter(|| {
            // Fresh registry every time: no cache to hit.
            let metrics = Arc::new(Metrics::default());
            let registry = Registry::new(metrics);
            registry.publish("d", pats.clone()).unwrap()
        });
    });

    let metrics = Arc::new(Metrics::default());
    let warm = Registry::new(metrics);
    warm.publish("d", patterns.clone()).unwrap();
    g.bench_with_input(BenchmarkId::new("cache_hit", 512), &patterns, |b, pats| {
        b.iter(|| warm.publish("d", pats.clone()).unwrap());
    });
    g.finish();
}

fn bench_match_throughput(c: &mut Criterion) {
    let alpha = Alphabet::dna();
    let patterns = random_dictionary(5, 256, 4, 12, alpha);
    let dict = Dictionary::new(patterns.clone());

    let engine = service_engine(0);
    engine.registry().publish("d", patterns.clone()).unwrap();

    let mut g = c.benchmark_group("service_match");
    g.sample_size(10);
    for nexp in [12u32, 14] {
        let n = 1usize << nexp;
        let text = text_with_planted_matches(n as u64, &patterns, n, 25, alpha);

        // One-shot library call: re-pays matcher construction every time.
        g.bench_with_input(BenchmarkId::new("library_oneshot", n), &text, |b, t| {
            b.iter(|| dictionary_match(&Pram::par(), &dict, t, 0xB0B));
        });

        // Engine call: preprocessing amortized at publish time.
        g.bench_with_input(BenchmarkId::new("engine", n), &text, |b, t| {
            b.iter(|| {
                engine.call(Request::new(OpRequest::Match {
                    dict: "d".into(),
                    text: t.to_vec(),
                }))
            });
        });

        // A burst of 8 queued requests drained as batches.
        g.bench_with_input(BenchmarkId::new("engine_burst8", n), &text, |b, t| {
            b.iter(|| {
                let tickets: Vec<_> = (0..8)
                    .map(|_| {
                        engine
                            .submit(Request::new(OpRequest::Match {
                                dict: "d".into(),
                                text: t.to_vec(),
                            }))
                            .unwrap()
                    })
                    .collect();
                tickets.into_iter().map(|t| t.wait()).count()
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_publish, bench_match_throughput);
criterion_main!(benches);
