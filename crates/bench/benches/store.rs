//! Criterion wall-clock benches for the persistence layer: cold-start
//! recovery as a function of dictionary count, with the same state held
//! two ways — as a pure WAL (every publish replayed one record at a
//! time) and as a compacted snapshot (one bulk load, empty WAL tail).
//! The gap between the two is the amortization compaction buys: the WAL
//! pays per-record framing and CRC on every boot, the snapshot pays it
//! once at compaction time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pardict_store::{Store, StoreConfig};
use pardict_workloads::{random_dictionary, Alphabet};
use std::path::PathBuf;

fn nosync() -> StoreConfig {
    StoreConfig {
        snapshot_every: 0,
        sync: false,
    }
}

/// Build a data dir holding `n` dictionaries, either left in the WAL or
/// folded into a snapshot. Deterministic contents per (n, compacted).
fn populate(n: usize, compacted: bool) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "pardict-bench-store-{n}-{}-{}",
        if compacted { "snap" } else { "wal" },
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let mut store = Store::open(&dir, nosync()).expect("open");
    for i in 0..n {
        let patterns = random_dictionary(i as u64, 16, 4, 12, Alphabet::dna());
        store
            .log_publish(&format!("dict{i}"), 1, &patterns)
            .expect("publish");
    }
    if compacted {
        store.compact().expect("compact");
    }
    dir
}

fn bench_cold_start_recovery(c: &mut Criterion) {
    let mut g = c.benchmark_group("store_recovery");
    g.sample_size(10);

    for n in [64usize, 512] {
        for (label, compacted) in [("wal_replay", false), ("snapshot", true)] {
            let dir = populate(n, compacted);
            g.bench_with_input(BenchmarkId::new(label, n), &dir, |b, d| {
                b.iter(|| {
                    let store = Store::open(d, nosync()).expect("recover");
                    assert!(store.recovery().is_clean());
                    assert_eq!(store.len(), n);
                    store
                });
            });
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
    g.finish();
}

fn bench_append_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("store_append");
    g.sample_size(10);

    let patterns = random_dictionary(7, 16, 4, 12, Alphabet::dna());
    let dir =
        std::env::temp_dir().join(format!("pardict-bench-store-append-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut store = Store::open(&dir, nosync()).expect("open");
    let mut i = 0u64;
    g.bench_function(BenchmarkId::new("log_publish_nosync", 16), |b| {
        b.iter(|| {
            i += 1;
            store.log_publish("hot", i, &patterns).expect("append")
        });
    });
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
    g.finish();
}

criterion_group!(benches, bench_cold_start_recovery, bench_append_throughput);
criterion_main!(benches);
