//! Criterion wall-clock benches for LZ1/LZ78 (E4/E5/E9).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pardict_compress::{
    lz1_compress, lz1_decompress, lz1_nlogn_baseline, lz77_sequential, lz78_compress,
};
use pardict_pram::Pram;
use pardict_workloads::{markov_text, repetitive_text, Alphabet};

fn bench_compress(c: &mut Criterion) {
    let mut g = c.benchmark_group("lz1_compress");
    g.sample_size(10);
    for nexp in [13u32, 15, 17] {
        let n = 1usize << nexp;
        let text = markov_text(n as u64, n, Alphabet::dna());
        g.bench_with_input(BenchmarkId::new("parallel", n), &text, |b, t| {
            b.iter(|| lz1_compress(&Pram::par(), t, 1));
        });
        g.bench_with_input(BenchmarkId::new("nlogn_baseline", n), &text, |b, t| {
            b.iter(|| lz1_nlogn_baseline(&Pram::par(), t, 2));
        });
        g.bench_with_input(BenchmarkId::new("sequential", n), &text, |b, t| {
            b.iter(|| lz77_sequential(t));
        });
        g.bench_with_input(BenchmarkId::new("lz78_seq", n), &text, |b, t| {
            b.iter(|| lz78_compress(t));
        });
    }
    g.finish();
}

fn bench_decompress(c: &mut Criterion) {
    let mut g = c.benchmark_group("lz1_decompress");
    g.sample_size(10);
    for nexp in [13u32, 15, 17] {
        let n = 1usize << nexp;
        let text = repetitive_text(n as u64, n, Alphabet::dna());
        let tokens = lz1_compress(&Pram::par(), &text, 1);
        g.bench_with_input(BenchmarkId::from_parameter(n), &tokens, |b, toks| {
            b.iter(|| lz1_decompress(&Pram::par(), toks, 2));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_compress, bench_decompress);
criterion_main!(benches);
