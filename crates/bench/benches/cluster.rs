//! Criterion wall-clock benches for the cluster router: container grep
//! (`grepz`) routed through one shard vs scatter-gathered across three,
//! with the single-node engine as the no-network baseline. The scatter
//! path re-frames block ranges as standalone containers and fans them
//! out, so wall-clock should track the widest shard's slice rather than
//! the whole container.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pardict_cluster::{ClusterConfig, Router};
use pardict_pram::Pram;
use pardict_service::{Engine, EngineConfig, Metrics, OpRequest, Registry, Request, Server};
use pardict_stream::{compress_stream, StreamConfig};
use pardict_workloads::{random_dictionary, text_with_planted_matches, Alphabet};
use std::net::SocketAddr;
use std::sync::Arc;

fn backend_engine() -> Engine {
    let metrics = Arc::new(Metrics::default());
    let registry = Arc::new(Registry::new(Arc::clone(&metrics)));
    Engine::new(
        EngineConfig {
            workers: 2,
            queue_depth: 1024,
            max_batch: 16,
            seq_threshold: 512,
            stream_threshold: 1 << 16,
        },
        registry,
        metrics,
    )
}

struct Cluster {
    router: Arc<Router>,
    engines: Vec<Engine>,
    servers: Vec<Server>,
}

fn cluster(shards: usize, patterns: &[Vec<u8>]) -> Cluster {
    let mut engines = Vec::new();
    let mut servers = Vec::new();
    let mut addrs: Vec<SocketAddr> = Vec::new();
    for _ in 0..shards {
        let engine = backend_engine();
        let server = Server::start(engine.clone(), "127.0.0.1:0").expect("backend start");
        addrs.push(server.addr());
        engines.push(engine);
        servers.push(server);
    }
    let router = Arc::new(Router::new(&addrs, ClusterConfig::default()));
    router.publish("d", patterns).expect("publish");
    Cluster {
        router,
        engines,
        servers,
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.router.shutdown();
        for s in &mut self.servers {
            s.stop();
        }
        for e in &self.engines {
            e.shutdown();
        }
    }
}

fn bench_grepz_fanout(c: &mut Criterion) {
    let alpha = Alphabet::dna();
    let patterns = random_dictionary(7, 128, 4, 12, alpha);

    let n = 1usize << 16;
    let text = text_with_planted_matches(n as u64, &patterns, n, 40, alpha);
    let cfg = StreamConfig::with_block_size(4096); // 16 blocks to scatter
    let (container, _) =
        compress_stream(&Pram::seq(), &mut &text[..], Vec::new(), &cfg).expect("compress");

    let mut g = c.benchmark_group("cluster_grepz");
    g.sample_size(10);

    // No-network baseline: one engine greps the whole container directly.
    let oracle = backend_engine();
    oracle.registry().publish("d", patterns.clone()).unwrap();
    g.bench_with_input(BenchmarkId::new("engine_direct", n), &container, |b, z| {
        b.iter(|| {
            oracle.call(Request::new(OpRequest::GrepContainer {
                dict: "d".into(),
                container: z.clone(),
            }))
        });
    });
    oracle.shutdown();

    for shards in [1usize, 3] {
        let cl = cluster(shards, &patterns);
        g.bench_with_input(
            BenchmarkId::new(format!("router_{shards}shard"), n),
            &container,
            |b, z| {
                b.iter(|| {
                    let routed = cl.router.grepz("d", z, 0);
                    assert!(routed.result.is_ok());
                    routed
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_grepz_fanout);
criterion_main!(benches);
