//! Criterion wall-clock benches for the super-step executor: barrier vs
//! pipelined wave schedules over multi-block grep, plus the unified
//! compress-wave path, at 8 and 32 blocks.
//!
//! The pipelined schedule overlaps decoding wave `k+1` with matching wave
//! `k`, so its win scales with the number of harts available to run the
//! stage thread: on a single-core runner the two schedules time-slice one
//! CPU and land within noise of each other, while the ledger charges stay
//! bit-identical either way (see `pipelined_grep_equals_barrier_grep` in
//! `tests/search.rs` — pipelining changes wall-clock, never work/depth).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pardict_core::{DictMatcher, Dictionary};
use pardict_pram::Pram;
use pardict_search::{grep_container, GrepConfig};
use pardict_stream::{compress_stream, StreamConfig, StreamReader};
use pardict_workloads::{markov_text, Alphabet};

/// ~512 KiB of DNA-ish text; 64 KiB blocks give an 8-block container,
/// 16 KiB blocks a 32-block one.
fn corpus() -> Vec<u8> {
    markov_text(0xBE9C_57E4, 1 << 19, Alphabet::dna())
}

fn matcher() -> DictMatcher {
    let dict = Dictionary::new(vec![
        b"ACGT".to_vec(),
        b"TTAGGG".to_vec(),
        b"GATTACA".to_vec(),
        b"CCC".to_vec(),
    ]);
    DictMatcher::build(&Pram::seq(), dict, 0x5EA_2C4)
}

fn bench_wave_grep(c: &mut Criterion) {
    let text = corpus();
    let m = matcher();

    let mut g = c.benchmark_group("wave_grep");
    g.sample_size(10);
    for (blocks, bs_exp) in [(8u32, 16u32), (32, 14)] {
        let cfg = StreamConfig::with_block_size(1 << bs_exp);
        let (container, _) =
            compress_stream(&Pram::par(), &mut &text[..], Vec::new(), &cfg).unwrap();

        for (sched, pipeline) in [("barrier", false), ("pipelined", true)] {
            g.bench_with_input(
                BenchmarkId::new(sched, format!("blocks_{blocks}")),
                &container,
                |b, cont| {
                    let grep_cfg = GrepConfig {
                        pipeline,
                        ..GrepConfig::default()
                    };
                    b.iter(|| {
                        let mut rdr = StreamReader::open(std::io::Cursor::new(cont)).unwrap();
                        grep_container(&Pram::par(), &m, &mut rdr, &grep_cfg).unwrap()
                    });
                },
            );
        }
    }
    g.finish();
}

fn bench_wave_compress(c: &mut Criterion) {
    let text = corpus();

    let mut g = c.benchmark_group("wave_compress");
    g.sample_size(10);
    for (blocks, bs_exp) in [(8u32, 16u32), (32, 14)] {
        let cfg = StreamConfig::with_block_size(1 << bs_exp);
        for (mode, pram) in [("seq", Pram::seq()), ("par", Pram::par())] {
            g.bench_with_input(
                BenchmarkId::new(mode, format!("blocks_{blocks}")),
                &text,
                |b, t| {
                    b.iter(|| compress_stream(&pram, &mut &t[..], Vec::new(), &cfg).unwrap());
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_wave_grep, bench_wave_compress);
criterion_main!(benches);
