//! Criterion wall-clock benches for compressed-domain dictionary search:
//! `grep_container` over a PDZS container vs the decompress-then-match
//! baseline, at several block sizes, plus the range-grep locality win.
//!
//! The acceptance intuition: grep-over-container pays the same per-block
//! decode the baseline pays, but skips materializing (and re-walking) one
//! contiguous output buffer, and a range query touches only covering
//! blocks — so the block-parallel search should track the baseline on
//! full scans and crush it on ranges.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pardict_core::{DictMatcher, Dictionary};
use pardict_pram::Pram;
use pardict_search::{grep_container, grep_range, GrepConfig};
use pardict_stream::{compress_stream, StreamConfig, StreamReader};
use pardict_workloads::{markov_text, Alphabet};

/// ~512 KiB of DNA-ish text; 64 KiB blocks give an 8-block container.
fn corpus() -> Vec<u8> {
    markov_text(0xBE9C_57E4, 1 << 19, Alphabet::dna())
}

fn matcher() -> DictMatcher {
    let dict = Dictionary::new(vec![
        b"ACGT".to_vec(),
        b"TTAGGG".to_vec(),
        b"GATTACA".to_vec(),
        b"CCC".to_vec(),
    ]);
    DictMatcher::build(&Pram::seq(), dict, 0x5EA_2C4)
}

fn bench_grep_container(c: &mut Criterion) {
    let text = corpus();
    let m = matcher();

    let mut g = c.benchmark_group("search_grep");
    g.sample_size(10);
    for bs_exp in [14u32, 16, 17] {
        let cfg = StreamConfig::with_block_size(1 << bs_exp);
        let (container, _) =
            compress_stream(&Pram::par(), &mut &text[..], Vec::new(), &cfg).unwrap();

        g.bench_with_input(
            BenchmarkId::new("grep_container", format!("block_{}", 1 << bs_exp)),
            &container,
            |b, cont| {
                b.iter(|| {
                    let mut rdr = StreamReader::open(std::io::Cursor::new(cont)).unwrap();
                    grep_container(&Pram::par(), &m, &mut rdr, &GrepConfig::default()).unwrap()
                });
            },
        );
        g.bench_with_input(
            BenchmarkId::new("decompress_then_match", format!("block_{}", 1 << bs_exp)),
            &container,
            |b, cont| {
                b.iter(|| {
                    let pram = Pram::par();
                    let mut rdr = StreamReader::open(std::io::Cursor::new(cont)).unwrap();
                    let (raw, _) = rdr.read_all(&pram).unwrap();
                    m.find_all(&pram, &raw)
                });
            },
        );
    }
    g.finish();
}

fn bench_range_grep(c: &mut Criterion) {
    let text = corpus();
    let m = matcher();
    let cfg = StreamConfig::with_block_size(1 << 16); // 8 blocks
    let (container, _) = compress_stream(&Pram::par(), &mut &text[..], Vec::new(), &cfg).unwrap();
    let mid = text.len() as u64 / 2;

    let mut g = c.benchmark_group("search_range");
    g.sample_size(10);
    // A 4 KiB window touches one block of eight.
    g.bench_function(BenchmarkId::from_parameter("grep_range_4k"), |b| {
        b.iter(|| {
            let mut rdr = StreamReader::open(std::io::Cursor::new(&container)).unwrap();
            grep_range(
                &Pram::par(),
                &m,
                &mut rdr,
                mid,
                mid + 4096,
                &GrepConfig::default(),
            )
            .unwrap()
        });
    });
    g.bench_function(
        BenchmarkId::from_parameter("decompress_then_match_4k"),
        |b| {
            b.iter(|| {
                let pram = Pram::par();
                let mut rdr = StreamReader::open(std::io::Cursor::new(&container)).unwrap();
                let (raw, _) = rdr.read_all(&pram).unwrap();
                m.find_all(&pram, &raw)
                    .into_iter()
                    .filter(|&(p, _)| (p as u64) >= mid && (p as u64) < mid + 4096)
                    .collect::<Vec<_>>()
            });
        },
    );
    g.finish();
}

criterion_group!(benches, bench_grep_container, bench_range_grep);
criterion_main!(benches);
