//! Criterion wall-clock benches for the PRAM substrates (E10).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pardict_graph::{EulerTour, Forest};
use pardict_pram::{list_rank_random_mate, list_rank_wyllie, Pram, SplitMix64};
use pardict_rmq::{ansv_par, LinearRmq, Side, Strictness};
use pardict_suffix::SuffixTree;
use pardict_workloads::{random_text, Alphabet};

fn bench_substrates(c: &mut Criterion) {
    let n = 1usize << 16;
    let mut rng = SplitMix64::new(7);

    let mut g = c.benchmark_group("substrates");
    g.sample_size(10);

    let xs: Vec<u64> = (0..n as u64).collect();
    g.bench_with_input(BenchmarkId::new("scan", n), &xs, |b, xs| {
        b.iter(|| Pram::par().scan_exclusive_sum(xs));
    });

    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        perm.swap(i, rng.next_below(i as u64 + 1) as usize);
    }
    let mut next = vec![0usize; n];
    for w in perm.windows(2) {
        next[w[0]] = w[1];
    }
    next[perm[n - 1]] = perm[n - 1];
    g.bench_with_input(BenchmarkId::new("list_rank_wyllie", n), &next, |b, nx| {
        b.iter(|| list_rank_wyllie(&Pram::par(), nx));
    });
    g.bench_with_input(
        BenchmarkId::new("list_rank_random_mate", n),
        &next,
        |b, nx| {
            b.iter(|| list_rank_random_mate(&Pram::par(), nx, 3));
        },
    );

    let parent: Vec<usize> = (0..n)
        .map(|v: usize| {
            if v == 0 {
                0
            } else {
                rng.next_below(v as u64) as usize
            }
        })
        .collect();
    g.bench_with_input(BenchmarkId::new("euler_tour", n), &parent, |b, par| {
        b.iter(|| {
            let pram = Pram::par();
            let f = Forest::from_parents(&pram, par);
            EulerTour::build(&pram, &f, 5)
        });
    });

    let vals: Vec<i64> = (0..n).map(|_| rng.next_below(1000) as i64).collect();
    g.bench_with_input(BenchmarkId::new("ansv", n), &vals, |b, v| {
        b.iter(|| ansv_par(&Pram::par(), v, Side::Left, Strictness::Strict));
    });
    g.bench_with_input(BenchmarkId::new("linear_rmq_build", n), &vals, |b, v| {
        b.iter(|| LinearRmq::new_min(&Pram::par(), v, 6));
    });

    let text = random_text(8, n, Alphabet::dna());
    g.bench_with_input(BenchmarkId::new("suffix_tree", n), &text, |b, t| {
        b.iter(|| SuffixTree::build(&Pram::par(), t, 9));
    });

    g.finish();
}

criterion_group!(benches, bench_substrates);
criterion_main!(benches);
