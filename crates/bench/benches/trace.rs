//! Criterion wall-clock benches for the tracing layer: the same engine
//! match workload with tracing disabled, head-sampled at 1-in-64, and
//! fully sampled. The disabled column is the PR gate — a traced build
//! with no tracer installed must stay within noise of the untraced
//! baseline, because every hook is an `Option` check on a cold path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pardict_service::{Engine, EngineConfig, Metrics, OpRequest, Registry, Request};
use pardict_trace::{TraceConfig, Tracer};
use pardict_workloads::{random_dictionary, text_with_planted_matches, Alphabet};
use std::sync::Arc;

fn engine_config() -> EngineConfig {
    EngineConfig {
        workers: 0,
        queue_depth: 4096,
        max_batch: 32,
        seq_threshold: 512,
        stream_threshold: 1 << 16,
    }
}

fn traced_engine(tracer: Option<Arc<Tracer>>) -> Engine {
    let metrics = Arc::new(Metrics::default());
    let registry = Arc::new(Registry::new(Arc::clone(&metrics)));
    Engine::new_traced(engine_config(), registry, metrics, tracer)
}

fn tracer(sample_one_in: u32) -> Arc<Tracer> {
    Tracer::new(TraceConfig {
        sample_one_in,
        seed: 0xBE4C,
        capacity: 1 << 16,
        deterministic: false,
    })
}

fn bench_trace_overhead(c: &mut Criterion) {
    let alpha = Alphabet::dna();
    let patterns = random_dictionary(5, 256, 4, 12, alpha);
    let n = 1usize << 14;
    let text = text_with_planted_matches(n as u64, &patterns, n, 25, alpha);

    let mut g = c.benchmark_group("trace_overhead");
    g.sample_size(10);

    // Baseline: no tracer installed. Hooks compile in but every one is a
    // `None` branch — this column must match the pre-tracing engine.
    let off = traced_engine(None);
    off.registry().publish("d", patterns.clone()).unwrap();
    g.bench_with_input(BenchmarkId::new("off", n), &text, |b, t| {
        b.iter(|| {
            off.call(Request::new(OpRequest::Match {
                dict: "d".into(),
                text: t.to_vec(),
            }))
        });
    });

    // Production shape: head sampling keeps 1 trace in 64; the other 63
    // requests pay one hash + one modulo.
    let sampled_tracer = tracer(64);
    let sampled = traced_engine(Some(Arc::clone(&sampled_tracer)));
    sampled.registry().publish("d", patterns.clone()).unwrap();
    g.bench_with_input(BenchmarkId::new("sampled_1_in_64", n), &text, |b, t| {
        b.iter(|| {
            let resp = sampled.call(
                Request::new(OpRequest::Match {
                    dict: "d".into(),
                    text: t.to_vec(),
                })
                .traced(sampled_tracer.begin_trace()),
            );
            let _ = sampled_tracer.drain();
            resp
        });
    });

    // Worst case: every request traced, every wave a span.
    let full_tracer = tracer(1);
    let full = traced_engine(Some(Arc::clone(&full_tracer)));
    full.registry().publish("d", patterns.clone()).unwrap();
    g.bench_with_input(BenchmarkId::new("full", n), &text, |b, t| {
        b.iter(|| {
            let resp = full.call(
                Request::new(OpRequest::Match {
                    dict: "d".into(),
                    text: t.to_vec(),
                })
                .traced(full_tracer.begin_trace()),
            );
            let _ = full_tracer.drain();
            resp
        });
    });

    g.finish();
}

criterion_group!(benches, bench_trace_overhead);
criterion_main!(benches);
