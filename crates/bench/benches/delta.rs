//! Criterion wall-clock benches for delta publishing: applying a
//! one-pattern delta to a 10k-pattern dictionary versus rebuilding the
//! whole thing from scratch, at both the core matcher layer
//! (`SegmentedMatcher::apply_delta` vs `SegmentedMatcher::build`) and
//! the registry layer (`Registry::publish_delta` vs a cold
//! `Registry::publish`). The gap is the amortization copy-on-write
//! segment reuse buys: the delta path re-preprocesses only the touched
//! tail segments while everything else is `Arc`-shared with the parent.
//!
//! A third, non-timing record reports WAL framing bytes for one delta
//! record against one full-publish record of the same dictionary —
//! durability cost proportional to the edit, not the dictionary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pardict_core::{DictDelta, SegmentedMatcher};
use pardict_pram::Pram;
use pardict_service::{Metrics, Registry};
use pardict_store::{Store, StoreConfig};
use pardict_workloads::{random_dictionary, Alphabet};
use std::io::Write as _;
use std::sync::Arc;

const DICT_SIZE: usize = 10_000;

fn dictionary() -> Vec<Vec<u8>> {
    random_dictionary(42, DICT_SIZE, 4, 12, Alphabet::dna())
}

fn one_add() -> DictDelta {
    DictDelta {
        adds: vec![b"needleneedle".to_vec()],
        removes: Vec::new(),
    }
}

fn nosync() -> StoreConfig {
    StoreConfig {
        snapshot_every: 0,
        sync: false,
    }
}

/// Core layer: apply a one-pattern delta against a prebuilt matcher vs
/// rebuilding the final pattern set from scratch.
fn bench_matcher_delta(c: &mut Criterion) {
    let mut g = c.benchmark_group("delta_publish");
    g.sample_size(10);

    let patterns = dictionary();
    let delta = one_add();
    let pram = Pram::seq();
    let base = SegmentedMatcher::build(&pram, patterns.clone());
    let mut finals = patterns;
    finals.extend(delta.adds.iter().cloned());

    g.bench_with_input(
        BenchmarkId::new("apply_delta_1", DICT_SIZE),
        &(),
        |b, ()| {
            b.iter(|| {
                let (next, stats) = base.apply_delta(&pram, &delta).expect("valid delta");
                assert!(stats.segments_reused >= stats.segments_total.saturating_sub(2));
                next
            });
        },
    );
    g.bench_with_input(BenchmarkId::new("full_rebuild", DICT_SIZE), &(), |b, ()| {
        b.iter(|| SegmentedMatcher::build(&pram, finals.clone()));
    });
    g.finish();
}

/// Registry layer, end to end: `publish_delta` against the live head vs
/// a full `publish` of the post-delta set. Every iteration adds a
/// fresh, unique pattern so neither path can be served from the
/// whole-version build cache.
fn bench_registry_delta(c: &mut Criterion) {
    let mut g = c.benchmark_group("delta_registry");
    g.sample_size(10);

    let patterns = dictionary();

    let registry = Registry::new(Arc::new(Metrics::default()));
    registry
        .publish("d", patterns.clone())
        .expect("seed publish");
    let mut i = 0u64;
    g.bench_with_input(
        BenchmarkId::new("publish_delta_1", DICT_SIZE),
        &(),
        |b, ()| {
            b.iter(|| {
                i += 1;
                let parent = registry.current("d").expect("installed").version;
                let delta = DictDelta {
                    adds: vec![format!("uniq-{i}").into_bytes()],
                    removes: Vec::new(),
                };
                registry
                    .publish_delta("d", parent, &delta)
                    .expect("delta publish")
            });
        },
    );

    let registry = Registry::new(Arc::new(Metrics::default()));
    let mut j = 0u64;
    g.bench_with_input(
        BenchmarkId::new("full_republish", DICT_SIZE),
        &(),
        |b, ()| {
            b.iter(|| {
                j += 1;
                let mut finals = patterns.clone();
                finals.push(format!("uniq-{j}").into_bytes());
                registry.publish("d", finals).expect("full publish")
            });
        },
    );
    g.finish();
}

/// Durability cost: framed WAL bytes for one delta record vs one full
/// publish record of the same dictionary. Not a timing — emitted as an
/// extra record in the `CRITERION_JSON` sink so the collected results
/// show the bytes-proportional-to-the-delta claim next to the
/// wall-clock numbers.
fn report_wal_bytes() {
    let patterns = dictionary();
    let delta = one_add();

    let dir = std::env::temp_dir().join(format!("pardict-bench-delta-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut store = Store::open(&dir, nosync()).expect("open");
    store.log_publish("d", 1, &patterns).expect("publish");
    let full_bytes = store.appended_bytes();
    store
        .log_delta("d", 2, &delta.adds, &delta.removes)
        .expect("delta");
    let delta_bytes = store.appended_bytes() - full_bytes;
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);

    println!(
        "delta_wal/bytes/{DICT_SIZE}: full publish {full_bytes} B, one-add delta {delta_bytes} B \
         ({}x smaller)",
        full_bytes / delta_bytes.max(1)
    );
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = writeln!(
                f,
                "{{\"bench\":\"delta_wal/bytes/{DICT_SIZE}\",\"full_publish_bytes\":{full_bytes},\
                 \"delta_bytes\":{delta_bytes},\"full_over_delta\":{}}}",
                full_bytes / delta_bytes.max(1)
            );
        }
    }
}

fn bench_wal_bytes(_c: &mut Criterion) {
    report_wal_bytes();
}

criterion_group!(
    benches,
    bench_matcher_delta,
    bench_registry_delta,
    bench_wal_bytes
);
criterion_main!(benches);
