//! Criterion wall-clock benches for the chunked streaming pipeline:
//! block-parallel container compression vs the whole-buffer parse, and
//! random-access range reads vs full decompression.
//!
//! The streaming acceptance bar: on inputs spanning ≥4 blocks, the
//! parallel pipeline should beat whole-buffer `lz1_compress` wall-clock
//! while staying within ~15% of its compressed size (measured ratios are
//! printed once per input so runs document the approximation gap).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pardict_compress::{encode_tokens, lz1_compress};
use pardict_pram::Pram;
use pardict_stream::{compress_stream, StreamConfig, StreamReader, STREAM_SEED};
use pardict_workloads::{markov_text, Alphabet};

/// One shared input: ~512 KiB of order-sensitive DNA-ish text, large
/// enough that 64 KiB blocks give an 8-block container.
fn corpus() -> Vec<u8> {
    markov_text(0xBE9C_57E4, 1 << 19, Alphabet::dna())
}

fn bench_stream_compress(c: &mut Criterion) {
    let text = corpus();
    let whole = encode_tokens(&lz1_compress(&Pram::par(), &text, STREAM_SEED)).len();

    let mut g = c.benchmark_group("stream_compress");
    g.sample_size(10);
    g.bench_with_input(
        BenchmarkId::new("whole_buffer", text.len()),
        &text,
        |b, t| {
            b.iter(|| lz1_compress(&Pram::par(), t, STREAM_SEED));
        },
    );
    for bs_exp in [14u32, 16, 17] {
        let cfg = StreamConfig::with_block_size(1 << bs_exp);
        let (container, _) =
            compress_stream(&Pram::par(), &mut &text[..], Vec::new(), &cfg).unwrap();
        println!(
            "stream block={}: container {} B vs whole {} B (ratio {:.3})",
            1 << bs_exp,
            container.len(),
            whole,
            container.len() as f64 / whole as f64
        );
        g.bench_with_input(
            BenchmarkId::new("streamed", format!("block_{}", 1 << bs_exp)),
            &text,
            |b, t| {
                b.iter(|| compress_stream(&Pram::par(), &mut &t[..], Vec::new(), &cfg).unwrap());
            },
        );
    }
    g.finish();
}

fn bench_random_access(c: &mut Criterion) {
    let text = corpus();
    let cfg = StreamConfig::with_block_size(1 << 16); // 8 blocks
    let (container, _) = compress_stream(&Pram::par(), &mut &text[..], Vec::new(), &cfg).unwrap();

    let mut g = c.benchmark_group("stream_random_access");
    g.sample_size(10);
    g.bench_function(BenchmarkId::new("full_decode", 8), |b| {
        b.iter(|| {
            let mut rdr = StreamReader::open(std::io::Cursor::new(&container)).unwrap();
            rdr.read_all(&Pram::par()).unwrap()
        });
    });
    // A 4 KiB slice from the middle touches one block of eight.
    let mid = text.len() as u64 / 2;
    g.bench_function(BenchmarkId::new("range_4k", 4096), |b| {
        b.iter(|| {
            let mut rdr = StreamReader::open(std::io::Cursor::new(&container)).unwrap();
            rdr.read_range(&Pram::par(), mid, mid + 4096).unwrap()
        });
    });
    g.finish();
}

criterion_group!(benches, bench_stream_compress, bench_random_access);
criterion_main!(benches);
