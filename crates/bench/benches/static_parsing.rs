//! Criterion wall-clock benches for static-dictionary parsing (E6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pardict_compress::{bfs_parse, greedy_parse, lff_parse, optimal_parse};
use pardict_core::{DictMatcher, Dictionary};
use pardict_pram::Pram;
use pardict_workloads::{dictionary_from_text, markov_text, Alphabet};

fn bench_static(c: &mut Criterion) {
    let alpha = Alphabet::dna();
    let training = markov_text(1, 20_000, alpha);
    let mut words: Vec<Vec<u8>> = (0..alpha.size()).map(|i| vec![alpha.symbol(i)]).collect();
    words.extend(dictionary_from_text(2, &training, 80, 3, 12));
    let dict = Dictionary::new(words);
    let pram = Pram::par();
    let matcher = DictMatcher::build(&pram, dict, 3);

    let mut g = c.benchmark_group("static_parse");
    g.sample_size(10);
    for nexp in [12u32, 14, 16] {
        let n = 1usize << nexp;
        let msg = markov_text(50 + n as u64, n, alpha);
        g.bench_with_input(BenchmarkId::new("optimal", n), &msg, |b, m| {
            b.iter(|| optimal_parse(&Pram::par(), &matcher, m));
        });
        g.bench_with_input(BenchmarkId::new("greedy", n), &msg, |b, m| {
            b.iter(|| greedy_parse(&Pram::par(), &matcher, m));
        });
        g.bench_with_input(BenchmarkId::new("lff", n), &msg, |b, m| {
            b.iter(|| lff_parse(&Pram::par(), &matcher, m));
        });
        g.bench_with_input(BenchmarkId::new("bfs_baseline", n), &msg, |b, m| {
            b.iter(|| bfs_parse(&Pram::par(), &matcher, m));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_static);
criterion_main!(benches);
