//! Criterion wall-clock benches for dictionary matching (E1/E2):
//! preprocessing across dictionary sizes, and matching for the
//! work-optimal matcher vs the MP93-envelope baseline vs Aho–Corasick.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pardict_core::{mp93_baseline, AhoCorasick, DictMatcher, Dictionary};
use pardict_pram::Pram;
use pardict_workloads::{random_dictionary, text_with_planted_matches, Alphabet};

fn bench_preprocess(c: &mut Criterion) {
    let mut g = c.benchmark_group("dict_preprocess");
    g.sample_size(10);
    for dexp in [12u32, 14, 16] {
        let d = 1usize << dexp;
        let dict = Dictionary::new(random_dictionary(d as u64, d / 8, 4, 12, Alphabet::dna()));
        g.bench_with_input(BenchmarkId::from_parameter(d), &dict, |b, dict| {
            b.iter(|| {
                let pram = Pram::par();
                DictMatcher::build(&pram, dict.clone(), 1)
            });
        });
    }
    g.finish();
}

fn bench_match(c: &mut Criterion) {
    let alpha = Alphabet::dna();
    let dict = Dictionary::new(random_dictionary(7, 1024, 4, 12, alpha));
    let pram = Pram::par();
    let matcher = DictMatcher::build(&pram, dict.clone(), 8);
    let ac = AhoCorasick::build(&dict);

    let mut g = c.benchmark_group("dict_match");
    g.sample_size(10);
    for nexp in [13u32, 15, 17] {
        let n = 1usize << nexp;
        let text = text_with_planted_matches(n as u64, dict.patterns(), n, 25, alpha);
        g.bench_with_input(BenchmarkId::new("optimal", n), &text, |b, t| {
            b.iter(|| matcher.match_text(&Pram::par(), t));
        });
        g.bench_with_input(BenchmarkId::new("mp93_baseline", n), &text, |b, t| {
            b.iter(|| mp93_baseline(&Pram::par(), &dict, t, 3));
        });
        g.bench_with_input(BenchmarkId::new("aho_corasick_seq", n), &text, |b, t| {
            b.iter(|| ac.match_text(t));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_preprocess, bench_match);
criterion_main!(benches);
