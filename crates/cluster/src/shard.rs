//! Rendezvous (highest-random-weight) shard selection.
//!
//! Every `(key, shard)` pair gets a pseudo-random weight; a key's primary
//! shard is the highest-weight one, its failover order the rest by
//! descending weight. The two properties that make this the right tool
//! for a dictionary router:
//!
//! 1. **Minimal disruption** — removing a shard only moves the keys whose
//!    primary it was (each to its runner-up); all other keys keep their
//!    shard. No ring state, no token table: the weight function *is* the
//!    assignment.
//! 2. **Deterministic failover order** — the full ranking is a pure
//!    function of `(key, shard count)`, so every router replica excludes
//!    a dead shard identically, and a seeded test reproduces routing
//!    byte-for-byte.

use pardict_pram::SplitMix64;

/// FNV-1a over the key, seeding the per-shard weight streams.
fn fnv1a(key: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in key {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The weight of `(key, shard)` — one SplitMix64 step keyed by both.
#[must_use]
pub fn weight(key: &str, shard: usize) -> u64 {
    SplitMix64::new(fnv1a(key.as_bytes()) ^ (shard as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .next_u64()
}

/// All `n` shards ranked by descending weight for `key` (ties broken by
/// shard id, though a tie needs a 64-bit collision). Index 0 is the
/// primary; the rest is the failover order.
#[must_use]
pub fn ranking(key: &str, n: usize) -> Vec<usize> {
    let mut ids: Vec<usize> = (0..n).collect();
    ids.sort_by_key(|&s| (std::cmp::Reverse(weight(key, s)), s));
    ids
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranking_is_a_permutation_and_deterministic() {
        for n in 1..6 {
            let r = ranking("corpus", n);
            let mut sorted = r.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..n).collect::<Vec<_>>());
            assert_eq!(r, ranking("corpus", n));
        }
    }

    #[test]
    fn removing_a_shard_only_moves_its_own_keys() {
        // Rendezvous invariant: with shard 2 excluded, a key whose
        // primary was not 2 keeps its primary.
        let n = 5;
        for key in ["a", "b", "corpus", "dict-7", "zz-top"] {
            let full = ranking(key, n);
            let without: Vec<usize> = full.iter().copied().filter(|&s| s != 2).collect();
            if full[0] != 2 {
                assert_eq!(without[0], full[0], "key {key} moved needlessly");
            } else {
                assert_eq!(without[0], full[1], "key {key} must go to its runner-up");
            }
        }
    }

    #[test]
    fn keys_spread_across_shards() {
        let n = 4;
        let mut counts = [0usize; 4];
        for i in 0..400 {
            counts[ranking(&format!("dict-{i}"), n)[0]] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            assert!((40..=160).contains(&c), "shard {s} got {c} of 400 keys");
        }
    }
}
