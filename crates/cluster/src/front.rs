//! TCP front end for the router: the same wire protocol the backends
//! speak, so any existing [`Client`](pardict_service::Client) can point
//! at a cluster instead of a single node without changing a byte —
//! except that container grep comes back as the richer
//! [`WireResponse::ClusterHits`] carrying the degraded-mode flag.

use crate::router::{ClusterError, Router};
use pardict_service::wire::{self, read_frame, write_frame, WireRequest, WireResponse};
use pardict_service::ServiceError;
use pardict_trace::{SpanId, TraceCtx, TraceId};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A running cluster front end bound to a local address.
pub struct RouterServer {
    router: Arc<Router>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl RouterServer {
    /// Bind `addr` (port 0 for ephemeral) and start accepting.
    ///
    /// # Errors
    /// Socket bind/configuration failures.
    pub fn start(router: Arc<Router>, addr: impl ToSocketAddrs) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_router = Arc::clone(&router);
        let accept_stop = Arc::clone(&stop);
        let accept_thread = std::thread::Builder::new()
            .name("pardict-cluster-accept".into())
            .spawn(move || accept_loop(&listener, &accept_router, &accept_stop))
            .expect("spawn cluster accept thread");
        Ok(Self {
            router,
            addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The router this server fronts.
    #[must_use]
    pub fn router(&self) -> &Arc<Router> {
        &self.router
    }

    /// Stop accepting; existing connections drain on client EOF.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for RouterServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: &TcpListener, router: &Arc<Router>, stop: &Arc<AtomicBool>) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let router = Arc::clone(router);
                let _ = std::thread::Builder::new()
                    .name("pardict-cluster-conn".into())
                    .spawn(move || {
                        let _ = serve_connection(stream, &router);
                    });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
}

fn serve_connection(stream: TcpStream, router: &Router) -> io::Result<()> {
    let mut reader = stream.try_clone()?;
    let mut writer = stream;
    while let Some(payload) = read_frame(&mut reader)? {
        let resp = match WireRequest::decode(&payload) {
            Err(e) => WireResponse::Error {
                code: ServiceError::BadRequest(String::new()).code(),
                message: format!("malformed request: {e}"),
            },
            Ok(req) => handle(router, req),
        };
        write_frame(&mut writer, &resp.encode())?;
    }
    Ok(())
}

fn error_response(e: &ClusterError) -> WireResponse {
    let (code, message) = e.to_wire();
    WireResponse::Error { code, message }
}

fn handle(router: &Router, req: WireRequest) -> WireResponse {
    // Unwrap the trace envelope first: the context only takes effect when
    // this router is actually tracing (a tracer-less router serves the
    // inner request and drops the context on the floor, by design).
    let (req, trace) = match req {
        WireRequest::Traced {
            trace,
            parent,
            inner,
        } => {
            let ctx = router.tracer().is_some().then_some(TraceCtx {
                trace: TraceId(trace),
                parent: SpanId(parent),
            });
            (*inner, ctx)
        }
        other => (other, None),
    };
    match req {
        WireRequest::Ping => WireResponse::Pong,
        WireRequest::Hello { extensions: _ } => WireResponse::Hello {
            // The front accepts delta publishes unconditionally (it
            // converts them per shard as needed); tracing only when a
            // tracer exists.
            extensions: wire::EXT_DELTA
                | if router.tracer().is_some() {
                    wire::EXT_TRACE
                } else {
                    0
                },
        },
        WireRequest::Traced { .. } => unreachable!("nested Traced rejected by the decoder"),
        WireRequest::Dicts => WireResponse::DictList(router.dict_digests()),
        WireRequest::Metrics => WireResponse::MetricsReport(router.report()),
        WireRequest::Stats => match router.merged_stats() {
            Ok((snap, _degraded)) => WireResponse::Stats(snap),
            Err(e) => error_response(&e),
        },
        WireRequest::Publish { name, patterns } => match router.publish(&name, &patterns) {
            Ok(summary) => WireResponse::Published {
                version: summary.version,
                cache_hit: false,
            },
            Err(e) => error_response(&e),
        },
        WireRequest::PubDelta {
            name,
            parent_version,
            adds,
            removes,
        } => {
            // The router's own view is authoritative for the parent: a
            // client delta against a superseded version is refused the
            // same way a single node refuses it.
            let current = router
                .dict_digests()
                .into_iter()
                .find(|(n, _, _)| *n == name)
                .map(|(_, v, _)| v);
            if current != Some(parent_version) {
                return WireResponse::Error {
                    code: ServiceError::BadRequest(String::new()).code(),
                    message: format!(
                        "delta parent version {parent_version} does not match current {current:?}"
                    ),
                };
            }
            match router.publish_delta(&name, &pardict_core::DictDelta { adds, removes }) {
                Ok(summary) => WireResponse::Published {
                    version: summary.version,
                    cache_hit: false,
                },
                Err(e) => error_response(&e),
            }
        }
        WireRequest::Op {
            tag,
            dict,
            text,
            timeout_ms,
        } => {
            if !matches!(
                tag,
                wire::tag::MATCH
                    | wire::tag::GREP
                    | wire::tag::COMPRESS
                    | wire::tag::PARSE
                    | wire::tag::GREPZ
            ) {
                return WireResponse::Error {
                    code: ServiceError::BadRequest(String::new()).code(),
                    message: format!("unknown op tag {tag}"),
                };
            }
            let routed = router.op_traced(tag, &dict, &text, timeout_ms, trace);
            match routed.result {
                Ok(resp) => resp,
                Err(e) => error_response(&e),
            }
        }
    }
}
