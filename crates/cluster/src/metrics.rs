//! Router-side accounting: cluster counters plus per-shard books.
//!
//! Mirrors the service-side [`Metrics`](pardict_service::Metrics) idiom —
//! lock-free counters, log₂ histograms, a plain-text report, and a
//! `check_accounting` contract the chaos tier leans on: every request the
//! router accepts is charged to exactly one outcome, no matter how many
//! attempts, failovers, or poisoned connections it took to get there.

use pardict_service::metrics::{Counter, Histogram};
use std::sync::atomic::{AtomicBool, Ordering};

/// Router-side books for one backend shard.
#[derive(Debug, Default)]
pub struct ShardStats {
    /// Attempts dispatched to this shard (first tries and failovers).
    pub attempts: Counter,
    /// Attempts that returned a well-formed response (success or
    /// app-level error) — the shard is alive and speaking the protocol.
    pub ok: Counter,
    /// Attempts that failed in transport (connect/read/write) or hit a
    /// shutting-down backend.
    pub failures: Counter,
    /// Healthy→dead transitions.
    pub deaths: Counter,
    /// Dead→healthy transitions (probe- or last-resort-driven).
    pub revivals: Counter,
    /// Dictionaries republished into this shard during revival because
    /// it was missing them (or held a stale content hash).
    pub revival_replays: Counter,
    /// Dictionaries revival left alone because the shard already held
    /// them with a matching content hash — recovered from its own store.
    pub revival_skips: Counter,
    /// Scatter-gather block ranges this shard served.
    pub ranges: Counter,
    /// Liveness as last observed (reporting only; routing state lives in
    /// the backend table).
    pub healthy: AtomicBool,
}

/// Cluster-wide router metrics: request outcomes, failover activity, and
/// per-shard attempt books.
#[derive(Debug)]
pub struct ClusterMetrics {
    /// Operations accepted by the router (publishes included).
    pub requests: Counter,
    /// Dictionary publishes routed (broadcast counts once).
    pub publishes: Counter,
    /// Requests answered with a success payload.
    pub completed_ok: Counter,
    /// Requests answered with a service-level error from a live shard.
    pub completed_err: Counter,
    /// Requests the cluster could not serve (no healthy backends, all
    /// attempts exhausted).
    pub failed: Counter,
    /// Extra attempts beyond each request's first.
    pub retries: Counter,
    /// Requests ultimately served by a backend other than their first
    /// candidate.
    pub failovers: Counter,
    /// Responses flagged degraded (served while shards were excluded or
    /// after an in-flight failover).
    pub degraded_responses: Counter,
    /// `grepz` requests fanned out across more than one shard.
    pub scatter_gathers: Counter,
    /// End-to-end router latency per request, microseconds.
    pub latency_us: Histogram,
    /// Per-shard books, indexed by backend id.
    pub per_shard: Vec<ShardStats>,
}

impl ClusterMetrics {
    /// Books for a cluster of `shards` backends.
    #[must_use]
    pub fn new(shards: usize) -> Self {
        Self {
            requests: Counter::default(),
            publishes: Counter::default(),
            completed_ok: Counter::default(),
            completed_err: Counter::default(),
            failed: Counter::default(),
            retries: Counter::default(),
            failovers: Counter::default(),
            degraded_responses: Counter::default(),
            scatter_gathers: Counter::default(),
            latency_us: Histogram::default(),
            per_shard: (0..shards)
                .map(|_| ShardStats {
                    healthy: AtomicBool::new(true),
                    ..ShardStats::default()
                })
                .collect(),
        }
    }

    /// Verify the router's accounting identities, returning the first
    /// violation. With `quiescent = true` (no requests in flight) the
    /// exact identities must hold: every accepted request has exactly one
    /// outcome, every shard attempt resolved, and nothing was charged
    /// twice — the "never double-charges" contract the chaos integration
    /// asserts after driving traffic through a poisoned proxy.
    ///
    /// # Errors
    /// A human-readable description of the first violated identity.
    pub fn check_accounting(&self, quiescent: bool) -> Result<(), String> {
        let requests = self.requests.get();
        let outcomes = self.completed_ok.get() + self.completed_err.get() + self.failed.get();
        if outcomes > requests {
            return Err(format!("outcomes {outcomes} exceed requests {requests}"));
        }
        if quiescent && outcomes != requests {
            return Err(format!(
                "quiescent but requests {requests} != outcomes {outcomes}"
            ));
        }
        if quiescent && self.latency_us.count() != requests {
            return Err(format!(
                "latency samples {} != requests {requests}",
                self.latency_us.count()
            ));
        }
        let answered = self.completed_ok.get() + self.completed_err.get();
        if self.degraded_responses.get() > answered {
            return Err(format!(
                "degraded {} exceeds answered {answered}",
                self.degraded_responses.get()
            ));
        }
        if self.failovers.get() > self.retries.get() + self.scatter_gathers.get() {
            return Err(format!(
                "failovers {} exceed retries {} + scatters {}",
                self.failovers.get(),
                self.retries.get(),
                self.scatter_gathers.get()
            ));
        }
        let mut attempts = 0u64;
        for (id, s) in self.per_shard.iter().enumerate() {
            attempts += s.attempts.get();
            let resolved = s.ok.get() + s.failures.get();
            if quiescent && resolved != s.attempts.get() {
                return Err(format!(
                    "shard {id}: attempts {} != ok {} + failures {}",
                    s.attempts.get(),
                    s.ok.get(),
                    s.failures.get()
                ));
            }
            if !quiescent && resolved > s.attempts.get() {
                return Err(format!("shard {id}: more resolutions than attempts"));
            }
            if s.revivals.get() > s.deaths.get() {
                return Err(format!(
                    "shard {id}: revivals {} exceed deaths {}",
                    s.revivals.get(),
                    s.deaths.get()
                ));
            }
        }
        // Publishes broadcast and scatters fan out, so shard attempts may
        // legitimately exceed requests; they can never be *fewer* than
        // answered requests when quiescent (every answer came from a
        // shard) unless nothing was answered.
        if quiescent && answered > 0 && attempts == 0 {
            return Err("answers recorded with zero shard attempts".into());
        }
        Ok(())
    }

    /// Plain-text report of router counters and per-shard books, in the
    /// same spirit as [`Metrics::report`](pardict_service::Metrics::report).
    #[must_use]
    pub fn report(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "== pardict-cluster metrics ==");
        let _ = writeln!(
            out,
            "requests:  total {}  publishes {}  ok {}  err {}  failed {}",
            self.requests.get(),
            self.publishes.get(),
            self.completed_ok.get(),
            self.completed_err.get(),
            self.failed.get(),
        );
        let _ = writeln!(
            out,
            "routing:   retries {}  failovers {}  degraded {}  scatter-gathers {}",
            self.retries.get(),
            self.failovers.get(),
            self.degraded_responses.get(),
            self.scatter_gathers.get(),
        );
        let _ = writeln!(
            out,
            "latency:   p50us {}  p95us {}  maxus {}",
            self.latency_us.quantile(0.50),
            self.latency_us.quantile(0.95),
            self.latency_us.max(),
        );
        let _ = writeln!(
            out,
            "{:<8} {:>9} | {:>8} {:>8} {:>8} | {:>7} {:>8} {:>7} {:>5} | {:>7}",
            "shard",
            "state",
            "attempts",
            "ok",
            "failures",
            "deaths",
            "revivals",
            "replays",
            "skips",
            "ranges",
        );
        for (id, s) in self.per_shard.iter().enumerate() {
            let _ = writeln!(
                out,
                "{:<8} {:>9} | {:>8} {:>8} {:>8} | {:>7} {:>8} {:>7} {:>5} | {:>7}",
                format!("shard-{id}"),
                if s.healthy.load(Ordering::Relaxed) {
                    "healthy"
                } else {
                    "excluded"
                },
                s.attempts.get(),
                s.ok.get(),
                s.failures.get(),
                s.deaths.get(),
                s.revivals.get(),
                s.revival_replays.get(),
                s.revival_skips.get(),
                s.ranges.get(),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_books_pass_and_violations_surface() {
        let m = ClusterMetrics::new(2);
        assert!(m.check_accounting(true).is_ok());
        m.requests.inc();
        m.completed_ok.inc();
        m.latency_us.record(120);
        m.per_shard[0].attempts.inc();
        m.per_shard[0].ok.inc();
        assert!(m.check_accounting(true).is_ok());
        // An attempt that never resolved is fine in flight, an error at rest.
        m.per_shard[1].attempts.inc();
        assert!(m.check_accounting(false).is_ok());
        assert!(m.check_accounting(true).is_err());
        m.per_shard[1].failures.inc();
        assert!(m.check_accounting(true).is_ok());
        // Double-charged outcome: more outcomes than requests.
        m.completed_err.inc();
        assert!(m.check_accounting(false).is_err());
    }

    #[test]
    fn report_names_every_shard() {
        let m = ClusterMetrics::new(3);
        m.per_shard[2].healthy.store(false, Ordering::Relaxed);
        let r = m.report();
        for id in 0..3 {
            assert!(r.contains(&format!("shard-{id}")), "{r}");
        }
        assert!(r.contains("excluded"), "{r}");
    }
}
