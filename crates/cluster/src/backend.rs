//! One backend shard as the router sees it: an address, a health bit,
//! and a small pool of pooled wire connections.
//!
//! Health is a consecutive-failure counter against a threshold: every
//! transport failure (or `ShuttingDown` from a draining engine) bumps it,
//! any well-formed response resets it, and crossing the threshold flips
//! the shard to excluded until [`Backend::mark_alive`] (a successful
//! revival probe) brings it back. Connections are pooled per backend so
//! sequential traffic reuses one socket; a connection checked out during
//! a failure is dropped, not returned, so the pool never caches a socket
//! known bad.

use pardict_service::{Client, ClientConfig};
use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Mutex;

/// Router-side state for one `pardict-service` backend.
pub struct Backend {
    /// Shard id — the index rendezvous ranking speaks in.
    pub id: usize,
    /// The backend's wire address.
    pub addr: SocketAddr,
    healthy: AtomicBool,
    consec_failures: AtomicU32,
    fail_threshold: u32,
    pool: Mutex<Vec<Client>>,
    client_cfg: ClientConfig,
}

impl Backend {
    /// A healthy backend at `addr`, excluded after `fail_threshold`
    /// consecutive failures.
    #[must_use]
    pub fn new(id: usize, addr: SocketAddr, fail_threshold: u32, client_cfg: ClientConfig) -> Self {
        Self {
            id,
            addr,
            healthy: AtomicBool::new(true),
            consec_failures: AtomicU32::new(0),
            fail_threshold: fail_threshold.max(1),
            pool: Mutex::new(Vec::new()),
            client_cfg,
        }
    }

    /// Whether the shard is currently routed to.
    #[must_use]
    pub fn is_healthy(&self) -> bool {
        self.healthy.load(Ordering::SeqCst)
    }

    /// A pooled connection, or a fresh dial when the pool is empty.
    ///
    /// # Errors
    /// Connection failures (the caller charges these as shard failures).
    pub fn checkout(&self) -> io::Result<Client> {
        if let Some(c) = self.pool.lock().expect("pool poisoned").pop() {
            return Ok(c);
        }
        Client::connect_with(self.addr, self.client_cfg.clone())
    }

    /// Return a connection that just completed a successful round trip.
    pub fn checkin(&self, client: Client) {
        let mut pool = self.pool.lock().expect("pool poisoned");
        if pool.len() < 8 {
            pool.push(client);
        }
    }

    /// Record a well-formed response: reset the failure streak. Returns
    /// `true` when this was a dead→alive observation (callers should
    /// treat it as a revival only if they also re-published state —
    /// routing code instead keeps dead shards dead until a probe runs).
    pub fn note_success(&self) {
        self.consec_failures.store(0, Ordering::SeqCst);
    }

    /// Record a transport-class failure; returns `true` when this crossed
    /// the threshold and flipped the shard healthy→excluded.
    pub fn note_failure(&self) -> bool {
        let streak = self.consec_failures.fetch_add(1, Ordering::SeqCst) + 1;
        if streak >= self.fail_threshold {
            return self.healthy.swap(false, Ordering::SeqCst);
        }
        false
    }

    /// Flip to excluded regardless of streak; returns `true` if it was
    /// healthy before.
    pub fn mark_dead(&self) -> bool {
        self.healthy.swap(false, Ordering::SeqCst)
    }

    /// Flip to healthy with a clean streak and an empty pool (old sockets
    /// predate whatever outage the shard just recovered from); returns
    /// `true` if it was excluded before.
    pub fn mark_alive(&self) -> bool {
        self.pool.lock().expect("pool poisoned").clear();
        self.consec_failures.store(0, Ordering::SeqCst);
        !self.healthy.swap(true, Ordering::SeqCst)
    }
}

impl std::fmt::Debug for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Backend")
            .field("id", &self.id)
            .field("addr", &self.addr)
            .field("healthy", &self.is_healthy())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr() -> SocketAddr {
        "127.0.0.1:1".parse().unwrap()
    }

    #[test]
    fn threshold_gates_the_death_transition() {
        let b = Backend::new(0, addr(), 3, ClientConfig::default());
        assert!(b.is_healthy());
        assert!(!b.note_failure());
        assert!(!b.note_failure());
        // A success in between resets the streak.
        b.note_success();
        assert!(!b.note_failure());
        assert!(!b.note_failure());
        assert!(b.note_failure(), "third consecutive failure must kill");
        assert!(!b.is_healthy());
        // Already dead: crossing again reports no transition.
        assert!(!b.note_failure());
        assert!(b.mark_alive());
        assert!(b.is_healthy());
        assert!(!b.mark_alive(), "already alive");
    }
}
