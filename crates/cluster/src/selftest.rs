//! In-process cluster selftest behind `pardict cluster --selftest`.
//!
//! Three real backends (engine + TCP server each) behind one [`Router`],
//! driven with a seeded mixed workload whose every response is compared
//! against a single-node oracle engine running the identical
//! configuration. Halfway through, one backend — chosen by the seed — is
//! killed (server stopped, engine shut down), and the run must continue
//! **degraded but correct**: every remaining response still equals the
//! oracle's, responses carry the degraded flag, and the router's
//! accounting closes exactly.
//!
//! The returned [`Outcome::summary`] is deliberately free of timing,
//! addresses, and latency facts: two runs with the same options must
//! produce byte-identical summaries, which is how the failover test pins
//! determinism. The seeded driver itself ([`drive_workload`]) is public
//! so the process-level smoke test (`pardict cluster --smoke`, which
//! SIGKILLs a real child backend) replays the same workload and oracle
//! comparison.

use crate::front::RouterServer;
use crate::router::{ClusterConfig, ClusterError, Router};
use pardict_pram::{Pram, SplitMix64};
use pardict_service::wire::{self, WireResponse};
use pardict_service::{
    Client, Engine, EngineConfig, Metrics, OpRequest, Registry, Reply, Request, Server,
    ServiceError,
};
use pardict_workloads::{random_dictionary, text_with_planted_matches, Alphabet};
use std::net::SocketAddr;
use std::sync::Arc;

/// Selftest knobs.
#[derive(Debug, Clone)]
pub struct Options {
    /// Requests the driver issues (the kill lands at the halfway mark).
    pub requests: usize,
    /// Workload seed; also selects the victim backend (`seed % 3`).
    pub seed: u64,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            requests: 240,
            seed: 0xC105_7E12,
        }
    }
}

/// What a selftest run produced.
#[derive(Debug)]
pub struct Outcome {
    /// Deterministic run summary — byte-identical across runs with equal
    /// [`Options`].
    pub summary: String,
    /// Router metrics report (latency facts; *not* deterministic).
    pub metrics_report: String,
}

/// Engine configuration shared by the backends and the oracle, so lane
/// selection (and therefore compressed payload bytes) agree.
#[must_use]
pub fn engine_config() -> EngineConfig {
    EngineConfig {
        workers: 2,
        queue_depth: 256,
        max_batch: 8,
        seq_threshold: 64,
        stream_threshold: 1 << 14,
    }
}

/// A fresh engine with its own registry and metrics, using
/// [`engine_config`].
#[must_use]
pub fn new_engine() -> Engine {
    let metrics = Arc::new(Metrics::default());
    let registry = Arc::new(Registry::new(Arc::clone(&metrics)));
    Engine::new(engine_config(), registry, metrics)
}

/// Deterministic tallies and failures from one [`drive_workload`] run.
#[derive(Debug, Default)]
pub struct DriveReport {
    /// Requests per op family: match, grep, compress, parse, grepz.
    pub counts: [usize; 5],
    /// Total longest-match hits returned.
    pub match_hits: u64,
    /// Total grep occurrences returned.
    pub grep_hits: u64,
    /// Total container-grep occurrences returned.
    pub grepz_hits: u64,
    /// Total compressed payload bytes returned.
    pub compress_bytes: u64,
    /// Total optimal-parse phrases returned.
    pub parse_phrases: u64,
    /// Requests where router and oracle agreed on `Unparseable`.
    pub unparseable: usize,
    /// Widest scatter-gather fan-out observed.
    pub scatter_shards_max: u32,
    /// Responses carrying the degraded flag.
    pub degraded_count: usize,
    /// Index of the first degraded response.
    pub first_degraded: Option<usize>,
    /// Oracle mismatches and driver-level errors (empty on success).
    pub failures: Vec<String>,
}

/// Drive `requests` seeded mixed operations through `router`, comparing
/// every response against `oracle` (a single-node engine that must hold
/// the same dictionary). `before_request(i)` runs ahead of request `i` —
/// the hook where a harness kills a backend. The workload and tallies are
/// pure functions of `(patterns, requests, seed)` plus the kill schedule,
/// so equal inputs give byte-equal reports.
#[allow(clippy::too_many_lines)]
pub fn drive_workload(
    router: &Router,
    oracle: &Engine,
    patterns: &[Vec<u8>],
    requests: usize,
    seed: u64,
    mut before_request: impl FnMut(usize),
) -> DriveReport {
    let alpha = Alphabet::dna();
    let mut rng = SplitMix64::new(seed ^ 0x5EED_CAFE);
    let mut report = DriveReport::default();

    for i in 0..requests {
        before_request(i);
        let n = if rng.next_u64().is_multiple_of(4) {
            64
        } else {
            1500
        };
        let text = text_with_planted_matches(seed ^ ((i as u64) << 8), patterns, n, 15, alpha);
        let roll = rng.next_u64() % 100;

        let (routed, oracle_op) = if roll < 30 {
            report.counts[0] += 1;
            (
                router.op(wire::tag::MATCH, "corpus", &text, 0),
                OpRequest::Match {
                    dict: "corpus".into(),
                    text: text.clone(),
                },
            )
        } else if roll < 55 {
            report.counts[1] += 1;
            (
                router.op(wire::tag::GREP, "corpus", &text, 0),
                OpRequest::Grep {
                    dict: "corpus".into(),
                    text: text.clone(),
                },
            )
        } else if roll < 65 {
            report.counts[2] += 1;
            (
                router.op(wire::tag::COMPRESS, "", &text, 0),
                OpRequest::Compress { text: text.clone() },
            )
        } else if roll < 75 {
            report.counts[3] += 1;
            (
                router.op(wire::tag::PARSE, "corpus", &text, 0),
                OpRequest::Parse {
                    dict: "corpus".into(),
                    text: text.clone(),
                },
            )
        } else {
            report.counts[4] += 1;
            let cfg = pardict_stream::StreamConfig::with_block_size(128);
            let compressed =
                pardict_stream::compress_stream(&Pram::seq(), &mut &text[..], Vec::new(), &cfg);
            let container = match compressed {
                Ok((c, _)) => c,
                Err(e) => {
                    report
                        .failures
                        .push(format!("request {i}: driver compress: {e}"));
                    continue;
                }
            };
            (
                router.grepz("corpus", &container, 0),
                OpRequest::GrepContainer {
                    dict: "corpus".into(),
                    container,
                },
            )
        };

        if routed.degraded {
            report.degraded_count += 1;
            report.first_degraded.get_or_insert(i);
        }

        let oracle_resp = oracle.call(Request::new(oracle_op));
        verify_response(i, &routed.result, &oracle_resp.result, &mut report.failures);
        if report.failures.len() > 5 {
            break;
        }

        match &routed.result {
            Ok(WireResponse::Hits { hits, .. }) => {
                if roll < 30 {
                    report.match_hits += hits.len() as u64;
                } else {
                    report.grep_hits += hits.len() as u64;
                }
            }
            Ok(WireResponse::Compressed { payload, .. }) => {
                report.compress_bytes += payload.len() as u64;
            }
            Ok(WireResponse::Parsed { phrases, .. }) => {
                report.parse_phrases += u64::from(*phrases);
            }
            Ok(WireResponse::ClusterHits { hits, shards, .. }) => {
                report.grepz_hits += hits.len() as u64;
                report.scatter_shards_max = report.scatter_shards_max.max(*shards);
            }
            Err(ClusterError::Service(ServiceError::Unparseable)) => {
                report.unparseable += 1;
            }
            _ => {}
        }
    }
    report
}

/// Compare one routed response against the single-node oracle's,
/// appending a description of any disagreement to `failures`.
pub fn verify_response(
    i: usize,
    routed: &Result<WireResponse, ClusterError>,
    oracle: &Result<Reply, ServiceError>,
    failures: &mut Vec<String>,
) {
    let mut fail = |msg: String| failures.push(format!("request {i}: {msg}"));
    match (routed, oracle) {
        (
            Ok(WireResponse::Hits { version, hits }),
            Ok(Reply::Match {
                version: ov,
                hits: oh,
            }),
        )
        | (
            Ok(WireResponse::Hits { version, hits }),
            Ok(Reply::Grep {
                version: ov,
                hits: oh,
            }),
        ) => {
            if version != ov {
                fail(format!("version {version} != oracle {ov}"));
            }
            if hits != oh {
                fail(format!("hits {} != oracle {}", hits.len(), oh.len()));
            }
        }
        (
            Ok(WireResponse::Compressed { payload, phrases }),
            Ok(Reply::Compress {
                payload: op,
                phrases: oph,
            }),
        ) => {
            if payload != op || phrases != oph {
                fail("compressed payload differs from oracle".into());
            }
        }
        (
            Ok(WireResponse::Parsed {
                phrases,
                greedy_phrases,
                ..
            }),
            Ok(Reply::Parse {
                phrases: oph,
                greedy_phrases: og,
                ..
            }),
        ) => {
            if phrases != oph || greedy_phrases != og {
                fail(format!(
                    "parse {phrases}/{greedy_phrases:?} != oracle {oph}/{og:?}"
                ));
            }
        }
        (
            Ok(WireResponse::ClusterHits {
                version,
                hits,
                corrupt_blocks,
                ..
            }),
            Ok(Reply::GrepContainer {
                version: ov,
                hits: oh,
                corrupt_blocks: oc,
            }),
        ) => {
            if version != ov {
                fail(format!("grepz version {version} != oracle {ov}"));
            }
            if hits != oh {
                fail(format!(
                    "grepz hits differ: {} vs oracle {} (order or content)",
                    hits.len(),
                    oh.len()
                ));
            }
            if corrupt_blocks != oc {
                fail(format!(
                    "corrupt blocks {corrupt_blocks:?} != oracle {oc:?}"
                ));
            }
        }
        (Err(ClusterError::Service(e)), Err(oe)) if e == oe => {}
        (got, want) => fail(format!("outcome mismatch: {got:?} vs oracle {want:?}")),
    }
}

/// Render the deterministic summary shared by `--selftest` and `--smoke`.
#[must_use]
pub fn render_summary(
    label: &str,
    requests: usize,
    seed: u64,
    victim: usize,
    kill_at: usize,
    r: &DriveReport,
) -> String {
    format!(
        "cluster {label} ok: {requests} requests over 3 backends, seed {seed}\n\
         ops: match {} grep {} compress {} parse {} grepz {}\n\
         tallies: match-hits {} grep-hits {} grepz-hits {} \
         compress-bytes {} parse-phrases {} unparseable {}\n\
         scatter: fan-out up to {} shards, merged order identical to single node\n\
         failover: backend {victim} killed at request {kill_at}; \
         {} degraded responses, first at request {}\n\
         oracle: every response identical to the single-node engine; accounting closed exactly\n",
        r.counts[0],
        r.counts[1],
        r.counts[2],
        r.counts[3],
        r.counts[4],
        r.match_hits,
        r.grep_hits,
        r.grepz_hits,
        r.compress_bytes,
        r.parse_phrases,
        r.unparseable,
        r.scatter_shards_max,
        r.degraded_count,
        r.first_degraded.unwrap_or(0),
    )
}

/// Run the cluster selftest.
///
/// # Errors
/// A description of the first failed assertion or infrastructure step.
pub fn run(opts: &Options) -> Result<Outcome, String> {
    const BACKENDS: usize = 3;
    let requests = opts.requests.max(8);
    let kill_at = requests / 2;
    let victim = usize::try_from(opts.seed % BACKENDS as u64).expect("mod 3 fits");

    // --- three served backends plus the single-node oracle.
    let mut engines = Vec::new();
    let mut servers: Vec<Option<Server>> = Vec::new();
    let mut addrs: Vec<SocketAddr> = Vec::new();
    for _ in 0..BACKENDS {
        let engine = new_engine();
        let server = Server::start(engine.clone(), "127.0.0.1:0")
            .map_err(|e| format!("backend start: {e}"))?;
        addrs.push(server.addr());
        engines.push(engine);
        servers.push(Some(server));
    }
    let oracle = new_engine();

    let router = Arc::new(Router::new(&addrs, ClusterConfig::default()));

    // --- publish one dictionary everywhere (and to the oracle).
    let patterns = random_dictionary(opts.seed, 24, 3, 10, Alphabet::dna());
    let summary_pub = router
        .publish("corpus", &patterns)
        .map_err(|e| format!("cluster publish: {e}"))?;
    if summary_pub.acks != BACKENDS as u32 || summary_pub.degraded {
        return Err(format!(
            "publish should reach all backends: {summary_pub:?}"
        ));
    }
    oracle
        .registry()
        .publish("corpus", patterns.clone())
        .map_err(|e| format!("oracle publish: {e}"))?;

    // --- sequential seeded driver with an in-process kill at halfway.
    let mut report = drive_workload(&router, &oracle, &patterns, requests, opts.seed, |i| {
        if i == kill_at {
            // Kill one backend: stop its listener, drain its engine. A
            // pooled router connection now gets ShuttingDown; a fresh
            // dial gets ConnectionRefused — both are dead-shard signals.
            servers[victim].take();
            engines[victim].shutdown();
        }
    });
    let mut failures = std::mem::take(&mut report.failures);

    // --- post-run assertions.
    if let Some(first) = report.first_degraded {
        if first < kill_at {
            failures.push(format!("request {first}: degraded before the kill"));
        }
    } else {
        failures.push("no degraded responses after killing a backend".into());
    }
    if report.scatter_shards_max < 2 {
        failures.push(format!(
            "scatter-gather never fanned out (max shards {})",
            report.scatter_shards_max
        ));
    }
    if router.metrics().scatter_gathers.get() == 0 {
        failures.push("scatter_gathers counter never moved".into());
    }
    if router.metrics().per_shard[victim].deaths.get() != 1 {
        failures.push(format!(
            "victim {victim} deaths = {}, expected exactly 1",
            router.metrics().per_shard[victim].deaths.get()
        ));
    }

    // --- TCP front: the same wire protocol end to end.
    {
        let front = RouterServer::start(Arc::clone(&router), "127.0.0.1:0")
            .map_err(|e| format!("front start: {e}"))?;
        let mut client =
            Client::connect(front.addr()).map_err(|e| format!("front connect: {e}"))?;
        client.ping().map_err(|e| format!("front ping: {e}"))?;
        let snap = client.stats().map_err(|e| format!("front stats: {e}"))?;
        if snap.completed == 0 {
            failures.push("merged stats show zero completed backend requests".into());
        }
        let text =
            text_with_planted_matches(opts.seed ^ 0xF0F0, &patterns, 400, 10, Alphabet::dna());
        match client.op(wire::tag::MATCH, "corpus", &text, 1000) {
            Ok(Ok(WireResponse::Hits { .. })) => {}
            other => failures.push(format!("front match: unexpected {other:?}")),
        }
        let wire_report = client
            .metrics()
            .map_err(|e| format!("front metrics: {e}"))?;
        if !wire_report.contains("pardict-cluster metrics") {
            failures.push("front metrics report missing cluster header".into());
        }
    }

    if let Err(e) = router.metrics().check_accounting(true) {
        failures.push(format!("accounting violated: {e}"));
    }

    let metrics_report = router.report();

    // --- teardown.
    router.shutdown();
    for s in servers.iter_mut().flatten() {
        s.stop();
    }
    for (id, e) in engines.iter().enumerate() {
        if id != victim {
            e.shutdown();
        }
    }
    oracle.shutdown();

    if let Some(first) = failures.first() {
        return Err(format!("{} failures; first: {first}", failures.len()));
    }

    Ok(Outcome {
        summary: render_summary("selftest", requests, opts.seed, victim, kill_at, &report),
        metrics_report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_cluster_selftest_passes() {
        let outcome = run(&Options {
            requests: 48,
            seed: 11,
        })
        .expect("cluster selftest should pass");
        assert!(outcome.summary.contains("cluster selftest ok"));
        assert!(outcome.summary.contains("degraded responses"));
        assert!(outcome.metrics_report.contains("pardict-cluster metrics"));
    }
}
