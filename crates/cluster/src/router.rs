//! The front-end router: rendezvous routing, scatter-gather, failover.
//!
//! The router speaks the existing wire vocabulary on both sides. Its
//! placement strategy is *replicated registry, sharded work*: dictionary
//! publishes broadcast to every healthy backend (dictionaries are small
//! and preprocessing is cached), while per-request work routes to a
//! single shard chosen by rendezvous hashing on the dictionary name —
//! so any shard can serve any dictionary, which is exactly what makes
//! failover a re-route instead of a re-publish. The one fan-out case is
//! container grep ([`Router::grepz`]): block ranges of the container are
//! re-framed as standalone containers ([`pardict_stream::slice_container`])
//! and scattered across *all* healthy shards, mirroring the paper's
//! block-independent decomposition — each shard's work is local to its
//! blocks plus a fixed overlap prefix, and the gather step is a
//! deterministic merge.
//!
//! Failure policy: transport errors and `ShuttingDown` replies mark a
//! shard's failure streak (excluded at the threshold) and trigger
//! failover to the next shard in the request's rendezvous order;
//! app-level errors from a live shard are answers, returned as-is.
//! Responses carry a **degraded** flag — true when the request failed
//! over mid-flight or any shard is currently excluded — so callers learn
//! about reduced capacity without correct results turning into errors.

use crate::backend::Backend;
use crate::metrics::ClusterMetrics;
use crate::shard::ranking;
use pardict_service::wire::{self, WireResponse};
use pardict_service::Hit;
use pardict_service::{Client, ClientConfig, MetricsSnapshot, ServiceError};
use pardict_stream::{slice_container, ContainerLayout};
use pardict_trace::{SpanGuard, TraceCtx, Tracer};
use std::collections::HashMap;
use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Router knobs.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Per-backend connection behavior (timeouts; the client's own
    /// single-reconnect stays on and handles transparent socket churn).
    pub client: ClientConfig,
    /// Maximum attempts per request or scatter range, first try included.
    pub attempts: u32,
    /// Backoff before retry `k` is `backoff << (k-1)` (exponential),
    /// skipped when it would overshoot the request deadline.
    pub backoff: Duration,
    /// Consecutive transport failures before a shard is excluded.
    pub fail_threshold: u32,
    /// Background health-probe period; `None` (the default) disables the
    /// probe thread — revival then happens only as a last resort when no
    /// healthy backend remains. Deterministic tests keep this off.
    pub probe_interval: Option<Duration>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            client: ClientConfig {
                connect_timeout: Some(Duration::from_secs(2)),
                read_timeout: Some(Duration::from_secs(30)),
                write_timeout: Some(Duration::from_secs(30)),
                reconnect: true,
            },
            attempts: 3,
            backoff: Duration::from_millis(5),
            fail_threshold: 1,
            probe_interval: None,
        }
    }
}

/// Why the cluster could not answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// Every backend is excluded or exhausted its attempts.
    NoBackends,
    /// A live shard answered with a service-level error.
    Service(ServiceError),
}

impl ClusterError {
    /// Wire `(code, message)` for the error frame. `NoBackends` reuses
    /// the `Overloaded` code — the honest client guidance is the same:
    /// back off and retry.
    #[must_use]
    pub fn to_wire(&self) -> (u8, String) {
        match self {
            ClusterError::NoBackends => (
                ServiceError::Overloaded.code(),
                "cluster: no healthy backends".into(),
            ),
            ClusterError::Service(e) => (e.code(), e.to_string()),
        }
    }
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::NoBackends => write!(f, "cluster: no healthy backends"),
            ClusterError::Service(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ClusterError {}

/// One routed answer plus the cluster-health caveat attached to it.
#[derive(Debug)]
pub struct Routed {
    /// The response (or why none could be produced).
    pub result: Result<WireResponse, ClusterError>,
    /// True when this request failed over mid-flight or any shard is
    /// currently excluded: results are correct but capacity is reduced.
    pub degraded: bool,
}

/// Outcome of a broadcast publish.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PublishSummary {
    /// Highest version installed among acknowledging shards (shards
    /// normally agree; they can differ transiently after a revival).
    pub version: u64,
    /// Shards that acknowledged.
    pub acks: u32,
    /// Total shards in the cluster.
    pub total: u32,
    /// True when any shard missed the broadcast (it will catch up on
    /// revival).
    pub degraded: bool,
}

/// Outcome of a broadcast delta publish.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaSummary {
    /// Highest version installed among acknowledging shards.
    pub version: u64,
    /// Shards that acknowledged (by delta or by fallback).
    pub acks: u32,
    /// Shards that applied the delta as a delta.
    pub delta_acks: u32,
    /// Shards that needed a full-publish fallback (legacy peer, or a
    /// shard whose current version did not match the delta's parent —
    /// e.g. freshly revived).
    pub full_fallbacks: u32,
    /// Total shards in the cluster.
    pub total: u32,
    /// True when any shard missed the broadcast (it will catch up on
    /// revival).
    pub degraded: bool,
}

/// The per-attempt closure [`Router::dispatch`] retries across shards:
/// given a connected client, the milliseconds left before the request's
/// deadline, and the trace context of this attempt's span (for wire
/// propagation), produce the transport result of one wire call.
type ShardCall<'a, T> =
    &'a (dyn Fn(&mut Client, u32, Option<TraceCtx>) -> io::Result<Result<T, ServiceError>> + Sync);

/// What one shard attempt produced.
enum Attempt<T> {
    /// Well-formed payload.
    Ok(T),
    /// Well-formed service error from a live shard — an answer.
    App(ServiceError),
    /// Transport failure, draining backend, or a protocol response that
    /// proves the link mangled our bytes — fail over.
    Down,
}

/// Per-dictionary state the router keeps for revival republish and
/// scatter overlap sizing. `content_hash` lets revival recognize a
/// backend that already recovered the dictionary from its own store.
struct DictInfo {
    patterns: Vec<Vec<u8>>,
    max_len: usize,
    version: u64,
    content_hash: u64,
}

/// The cluster front end.
pub struct Router {
    backends: Vec<Arc<Backend>>,
    cfg: ClusterConfig,
    metrics: Arc<ClusterMetrics>,
    dicts: Mutex<HashMap<String, DictInfo>>,
    rr: AtomicUsize,
    probe_stop: Arc<AtomicBool>,
    probe_thread: Mutex<Option<JoinHandle<()>>>,
    tracer: Option<Arc<Tracer>>,
}

impl Router {
    /// A router over `addrs`, one backend per address, all presumed
    /// healthy until proven otherwise.
    #[must_use]
    pub fn new(addrs: &[SocketAddr], cfg: ClusterConfig) -> Self {
        Self::new_traced(addrs, cfg, None)
    }

    /// [`Router::new`] with a tracer: routed requests get a `route` root
    /// span, each shard attempt a nested `attempt` span, and scatter
    /// ranges `scatter` spans — all propagated to backends over the wire
    /// (when they negotiated [`wire::EXT_TRACE`]).
    #[must_use]
    pub fn new_traced(
        addrs: &[SocketAddr],
        cfg: ClusterConfig,
        tracer: Option<Arc<Tracer>>,
    ) -> Self {
        let backends = addrs
            .iter()
            .enumerate()
            .map(|(id, &addr)| {
                Arc::new(Backend::new(
                    id,
                    addr,
                    cfg.fail_threshold,
                    cfg.client.clone(),
                ))
            })
            .collect();
        Self {
            backends,
            metrics: Arc::new(ClusterMetrics::new(addrs.len())),
            cfg,
            dicts: Mutex::new(HashMap::new()),
            rr: AtomicUsize::new(0),
            probe_stop: Arc::new(AtomicBool::new(false)),
            probe_thread: Mutex::new(None),
            tracer,
        }
    }

    /// The router's accounting books.
    #[must_use]
    pub fn metrics(&self) -> &ClusterMetrics {
        &self.metrics
    }

    /// The tracer, when tracing is on.
    #[must_use]
    pub fn tracer(&self) -> Option<&Arc<Tracer>> {
        self.tracer.as_ref()
    }

    /// Root span for one routed request: nests under `inbound` when the
    /// client propagated a context, otherwise starts (and head-samples) a
    /// fresh trace. `None` when tracing is off or the trace is unsampled.
    fn route_span(&self, name: &'static str, inbound: Option<TraceCtx>) -> Option<SpanGuard<'_>> {
        let t = self.tracer.as_ref()?;
        let ctx = inbound.or_else(|| t.begin_trace())?;
        Some(t.start(ctx, name, 0))
    }

    /// Number of backends (healthy or not).
    #[must_use]
    pub fn num_backends(&self) -> usize {
        self.backends.len()
    }

    /// True when any shard is currently excluded.
    #[must_use]
    pub fn any_excluded(&self) -> bool {
        self.backends.iter().any(|b| !b.is_healthy())
    }

    /// Ids of currently healthy shards, ascending.
    #[must_use]
    pub fn healthy_ids(&self) -> Vec<usize> {
        self.backends
            .iter()
            .filter(|b| b.is_healthy())
            .map(|b| b.id)
            .collect()
    }

    // ---- shard attempt plumbing ----

    /// Record a shard failure, flipping health books on the
    /// threshold-crossing transition.
    fn shard_failed(&self, shard: usize) {
        self.metrics.per_shard[shard].failures.inc();
        if self.backends[shard].note_failure() {
            self.metrics.per_shard[shard].deaths.inc();
            self.metrics.per_shard[shard]
                .healthy
                .store(false, Ordering::Relaxed);
        }
    }

    /// One attempt of `f` against `shard`, with checkout/checkin and
    /// failure-streak bookkeeping.
    fn call_shard<T>(
        &self,
        shard: usize,
        f: &(dyn Fn(&mut Client) -> io::Result<Result<T, ServiceError>> + Sync),
    ) -> Attempt<T> {
        self.metrics.per_shard[shard].attempts.inc();
        let backend = &self.backends[shard];
        let mut client = match backend.checkout() {
            Ok(c) => c,
            Err(_) => {
                self.shard_failed(shard);
                return Attempt::Down;
            }
        };
        match f(&mut client) {
            Ok(Ok(v)) => {
                self.metrics.per_shard[shard].ok.inc();
                backend.note_success();
                backend.checkin(client);
                Attempt::Ok(v)
            }
            // A draining backend is as gone as a dead socket.
            Ok(Err(ServiceError::ShuttingDown)) => {
                self.shard_failed(shard);
                Attempt::Down
            }
            // "malformed request" from a backend proves the link mangled
            // our (well-formed) frame — a poisoned path, not an answer.
            Ok(Err(ServiceError::BadRequest(m))) if m.starts_with("malformed request") => {
                self.shard_failed(shard);
                Attempt::Down
            }
            Ok(Err(e)) => {
                self.metrics.per_shard[shard].ok.inc();
                backend.note_success();
                backend.checkin(client);
                Attempt::App(e)
            }
            Err(_) => {
                self.shard_failed(shard);
                Attempt::Down
            }
        }
    }

    /// Try `f` against shards in `order` (skipping excluded ones) with
    /// bounded attempts, exponential backoff, and deadline awareness.
    /// Returns the payload plus whether the request failed over (served
    /// only after a failed attempt elsewhere).
    ///
    /// With tracing on and a `parent` context, every attempt — including
    /// the failed ones a failover leaves behind — records an `attempt`
    /// span under the parent, indexed `shard | attempt_number << 32`, and
    /// the attempt's own context rides to the backend through `f`.
    fn dispatch<T>(
        &self,
        order: &[usize],
        deadline: Option<Instant>,
        parent: Option<TraceCtx>,
        f: ShardCall<'_, T>,
    ) -> Result<(T, bool), ClusterError> {
        let mut tried = 0u32;
        for &shard in order {
            if tried >= self.cfg.attempts {
                break;
            }
            if !self.backends[shard].is_healthy() {
                continue;
            }
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    return Err(ClusterError::Service(ServiceError::DeadlineExceeded));
                }
            }
            if tried > 0 {
                self.metrics.retries.inc();
                let pause = self.cfg.backoff * (1 << (tried - 1).min(8));
                let pause = match deadline {
                    Some(d) => pause.min(d.saturating_duration_since(Instant::now())),
                    None => pause,
                };
                std::thread::sleep(pause);
            }
            tried += 1;
            let remaining_ms = deadline.map_or(0, |d| {
                u32::try_from(d.saturating_duration_since(Instant::now()).as_millis())
                    .unwrap_or(u32::MAX)
                    .max(1)
            });
            let span = match (&self.tracer, parent) {
                (Some(t), Some(ctx)) => Some(t.start(
                    ctx,
                    "attempt",
                    u64::try_from(shard).unwrap_or(u64::MAX) | (u64::from(tried - 1) << 32),
                )),
                _ => None,
            };
            let actx = span.as_ref().map(SpanGuard::ctx);
            match self.call_shard(shard, &|c: &mut Client| f(c, remaining_ms, actx)) {
                Attempt::Ok(v) => {
                    let failed_over = tried > 1;
                    if failed_over {
                        self.metrics.failovers.inc();
                    }
                    return Ok((v, failed_over));
                }
                Attempt::App(e) => return Err(ClusterError::Service(e)),
                Attempt::Down => {}
            }
        }
        Err(ClusterError::NoBackends)
    }

    /// Last-resort healing: when nothing is healthy, try to revive every
    /// excluded shard. Returns whether any shard is healthy afterwards.
    fn ensure_some_healthy(&self) -> bool {
        if self.backends.iter().any(|b| b.is_healthy()) {
            return true;
        }
        for id in 0..self.backends.len() {
            self.try_revive(id);
        }
        self.backends.iter().any(|b| b.is_healthy())
    }

    /// Probe an excluded shard and bring it back: ping it, ask what it
    /// already holds (a backend with a `--data-dir` recovers its own
    /// dictionaries from its local store on boot), replay only the
    /// dictionaries that are missing or stale by content hash, and only
    /// then mark it healthy. When the digest query itself fails, fall
    /// back to replaying everything — correctness over economy. Returns
    /// `true` on a dead→alive transition. Probe traffic is off the
    /// per-shard attempt books (it is router-initiated, not request
    /// work); replay-vs-skip economics land in the `revival_replays` /
    /// `revival_skips` shard counters.
    pub fn try_revive(&self, shard: usize) -> bool {
        let backend = &self.backends[shard];
        if backend.is_healthy() {
            return false;
        }
        let Ok(mut client) = Client::connect_with(backend.addr, self.cfg.client.clone()) else {
            return false;
        };
        if client.ping().is_err() {
            return false;
        }
        let dicts: Vec<(String, Vec<Vec<u8>>, u64)> = {
            let guard = self.dicts.lock().expect("dicts poisoned");
            guard
                .iter()
                .map(|(k, v)| (k.clone(), v.patterns.clone(), v.content_hash))
                .collect()
        };
        let held: HashMap<String, u64> = match client.dicts() {
            Ok(digests) => digests.into_iter().map(|(n, _v, h)| (n, h)).collect(),
            // A backend that can't answer the digest query gets the full
            // replay — an extra publish is cheap, a missing dict is not.
            Err(_) => HashMap::new(),
        };
        for (name, patterns, hash) in dicts {
            if held.get(&name) == Some(&hash) {
                self.metrics.per_shard[shard].revival_skips.inc();
                continue;
            }
            match client.publish(&name, patterns) {
                Ok(Ok(_)) => self.metrics.per_shard[shard].revival_replays.inc(),
                _ => return false,
            }
        }
        if backend.mark_alive() {
            self.metrics.per_shard[shard].revivals.inc();
            self.metrics.per_shard[shard]
                .healthy
                .store(true, Ordering::Relaxed);
            return true;
        }
        false
    }

    /// Start the background probe thread (no-op unless
    /// [`ClusterConfig::probe_interval`] is set): periodically revives
    /// excluded shards.
    pub fn start_probes(self: &Arc<Self>) {
        let Some(interval) = self.cfg.probe_interval else {
            return;
        };
        let router = Arc::clone(self);
        let stop = Arc::clone(&self.probe_stop);
        let handle = std::thread::Builder::new()
            .name("pardict-cluster-probe".into())
            .spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    std::thread::sleep(interval);
                    for id in 0..router.backends.len() {
                        if stop.load(Ordering::SeqCst) {
                            return;
                        }
                        router.try_revive(id);
                    }
                }
            })
            .expect("spawn probe thread");
        *self.probe_thread.lock().expect("probe poisoned") = Some(handle);
    }

    /// Stop the probe thread, if running.
    pub fn shutdown(&self) {
        self.probe_stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.probe_thread.lock().expect("probe poisoned").take() {
            let _ = h.join();
        }
    }

    // ---- request envelope ----

    /// Close out one request's books: exactly one outcome counter, one
    /// latency sample, and the degraded counter for answered-degraded.
    fn finish(&self, started: Instant, routed: &Routed) {
        match &routed.result {
            Ok(_) => self.metrics.completed_ok.inc(),
            Err(ClusterError::Service(_)) => self.metrics.completed_err.inc(),
            Err(ClusterError::NoBackends) => self.metrics.failed.inc(),
        }
        if routed.degraded && !matches!(routed.result, Err(ClusterError::NoBackends)) {
            self.metrics.degraded_responses.inc();
        }
        self.metrics
            .latency_us
            .record(u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX));
    }

    // ---- public operations ----

    /// Broadcast a dictionary to every healthy backend and remember it
    /// for revival replay.
    ///
    /// # Errors
    /// [`ClusterError::NoBackends`] when no shard acknowledged;
    /// [`ClusterError::Service`] when a live shard rejected the publish.
    pub fn publish(
        &self,
        name: &str,
        patterns: &[Vec<u8>],
    ) -> Result<PublishSummary, ClusterError> {
        let started = Instant::now();
        self.metrics.requests.inc();
        self.metrics.publishes.inc();
        self.ensure_some_healthy();
        let mut acks = 0u32;
        let mut version = 0u64;
        let mut rejected: Option<ServiceError> = None;
        for shard in 0..self.backends.len() {
            if !self.backends[shard].is_healthy() {
                continue;
            }
            let pats = patterns.to_vec();
            match self.call_shard(shard, &move |c: &mut Client| c.publish(name, pats.clone())) {
                Attempt::Ok((v, _cache_hit)) => {
                    acks += 1;
                    version = version.max(v);
                }
                Attempt::App(e) => rejected = Some(e),
                Attempt::Down => {}
            }
        }
        let total = u32::try_from(self.backends.len()).unwrap_or(u32::MAX);
        let result = if acks > 0 {
            let max_len = patterns.iter().map(Vec::len).max().unwrap_or(0);
            self.dicts.lock().expect("dicts poisoned").insert(
                name.to_string(),
                DictInfo {
                    patterns: patterns.to_vec(),
                    max_len,
                    version,
                    content_hash: pardict_service::registry::content_hash(patterns),
                },
            );
            Ok(PublishSummary {
                version,
                acks,
                total,
                degraded: acks < total,
            })
        } else if let Some(e) = rejected {
            Err(ClusterError::Service(e))
        } else {
            Err(ClusterError::NoBackends)
        };
        let routed = Routed {
            degraded: result.as_ref().map_or(true, |s| s.degraded) || self.any_excluded(),
            result: match &result {
                // Bridge to the envelope's WireResponse-based accounting.
                Ok(s) => Ok(WireResponse::Published {
                    version: s.version,
                    cache_hit: false,
                }),
                Err(e) => Err(e.clone()),
            },
        };
        self.finish(started, &routed);
        result
    }

    /// Broadcast an incremental delta to every healthy backend, falling
    /// back to a full publish per shard when the shard can't take the
    /// delta (legacy peer without [`wire::EXT_DELTA`], or a current
    /// version that doesn't match the delta's parent — e.g. a freshly
    /// revived shard). The router applies the delta to its own
    /// replicated-registry view first, so revival replays and scatter
    /// overlap sizing see the post-delta dictionary, and chains the
    /// content hash in `O(|delta|)` — identical to what a full publish
    /// of the resulting pattern set would compute, so digest-based
    /// revival skips keep working across the two paths.
    ///
    /// # Errors
    /// [`ClusterError::Service`] when the delta is invalid against the
    /// router's view (unknown dictionary, remove that matches nothing,
    /// empty result) or a live shard rejected it and its fallback;
    /// [`ClusterError::NoBackends`] when no shard acknowledged.
    pub fn publish_delta(
        &self,
        name: &str,
        delta: &pardict_core::DictDelta,
    ) -> Result<DeltaSummary, ClusterError> {
        let started = Instant::now();
        self.metrics.requests.inc();
        self.metrics.publishes.inc();
        self.ensure_some_healthy();
        // Validate against the router's replicated view and compute the
        // final pattern set + chained hash before touching the network.
        let (parent_version, finals, new_hash) = {
            let guard = self.dicts.lock().expect("dicts poisoned");
            let Some(info) = guard.get(name) else {
                return Err(ClusterError::Service(ServiceError::NoSuchDictionary(
                    name.to_string(),
                )));
            };
            let (finals, removed_counts) =
                pardict_core::apply_delta_patterns(&info.patterns, delta)
                    .map_err(|e| ClusterError::Service(ServiceError::BadRequest(e.to_string())))?;
            let new_hash = pardict_core::chain_identity(info.content_hash, delta, &removed_counts);
            (info.version, finals, new_hash)
        };
        let mut acks = 0u32;
        let mut delta_acks = 0u32;
        let mut full_fallbacks = 0u32;
        let mut version = 0u64;
        let mut rejected: Option<ServiceError> = None;
        for shard in 0..self.backends.len() {
            if !self.backends[shard].is_healthy() {
                continue;
            }
            let pats = finals.clone();
            let call = move |c: &mut Client| -> io::Result<Result<(u64, bool), ServiceError>> {
                match c.publish_delta(name, parent_version, delta, None) {
                    Ok(Ok((v, _cache_hit))) => return Ok(Ok((v, true))),
                    // Shard refused the delta (stale/missing parent) or
                    // is a legacy peer: converge with a full publish.
                    Ok(Err(_)) => {}
                    Err(e) if e.kind() == io::ErrorKind::Unsupported => {}
                    Err(e) => return Err(e),
                }
                match c.publish(name, pats.clone())? {
                    Ok((v, _cache_hit)) => Ok(Ok((v, false))),
                    Err(e) => Ok(Err(e)),
                }
            };
            match self.call_shard(shard, &call) {
                Attempt::Ok((v, took_delta)) => {
                    acks += 1;
                    if took_delta {
                        delta_acks += 1;
                    } else {
                        full_fallbacks += 1;
                    }
                    version = version.max(v);
                }
                Attempt::App(e) => rejected = Some(e),
                Attempt::Down => {}
            }
        }
        let total = u32::try_from(self.backends.len()).unwrap_or(u32::MAX);
        let result = if acks > 0 {
            let max_len = finals.iter().map(Vec::len).max().unwrap_or(0);
            self.dicts.lock().expect("dicts poisoned").insert(
                name.to_string(),
                DictInfo {
                    patterns: finals,
                    max_len,
                    version,
                    content_hash: new_hash,
                },
            );
            Ok(DeltaSummary {
                version,
                acks,
                delta_acks,
                full_fallbacks,
                total,
                degraded: acks < total,
            })
        } else if let Some(e) = rejected {
            Err(ClusterError::Service(e))
        } else {
            Err(ClusterError::NoBackends)
        };
        let routed = Routed {
            degraded: result.as_ref().map_or(true, |s| s.degraded) || self.any_excluded(),
            result: match &result {
                Ok(s) => Ok(WireResponse::Published {
                    version: s.version,
                    cache_hit: false,
                }),
                Err(e) => Err(e.clone()),
            },
        };
        self.finish(started, &routed);
        result
    }

    /// Route one single-shard operation (`tag::MATCH`, `tag::GREP`,
    /// `tag::COMPRESS`, `tag::PARSE`): rendezvous order on the dictionary
    /// name, round-robin for dictionary-less compress. `tag::GREPZ`
    /// delegates to the scatter-gather path.
    pub fn op(&self, tag: u8, dict: &str, text: &[u8], timeout_ms: u32) -> Routed {
        self.op_traced(tag, dict, text, timeout_ms, None)
    }

    /// [`Router::op`] with an inbound trace context (from a client that
    /// propagated one through the cluster front end). With tracing on,
    /// the request records a `route` root span with each shard attempt
    /// nested under it.
    pub fn op_traced(
        &self,
        tag: u8,
        dict: &str,
        text: &[u8],
        timeout_ms: u32,
        inbound: Option<TraceCtx>,
    ) -> Routed {
        if tag == wire::tag::GREPZ {
            return self.grepz_traced(dict, text, timeout_ms, inbound);
        }
        let started = Instant::now();
        self.metrics.requests.inc();
        self.ensure_some_healthy();
        let order = if tag == wire::tag::COMPRESS {
            let n = self.backends.len();
            let start = self.rr.fetch_add(1, Ordering::Relaxed) % n.max(1);
            (0..n).map(|i| (start + i) % n).collect()
        } else {
            ranking(dict, self.backends.len())
        };
        let deadline =
            (timeout_ms > 0).then(|| started + Duration::from_millis(u64::from(timeout_ms)));
        let route = self.route_span("route", inbound);
        let rctx = route.as_ref().map(SpanGuard::ctx);
        let text = text.to_vec();
        let outcome = self.dispatch(
            &order,
            deadline,
            rctx,
            &move |c: &mut Client, remaining, actx| c.op_traced(tag, dict, &text, remaining, actx),
        );
        let (result, failed_over) = match outcome {
            Ok((resp, fo)) => (Ok(resp), fo),
            Err(e) => (Err(e), false),
        };
        let routed = Routed {
            degraded: failed_over || self.any_excluded(),
            result,
        };
        self.finish(started, &routed);
        routed
    }

    /// Container grep with scatter-gather: fan block ranges of the
    /// container out across every healthy shard, each range re-framed as
    /// a standalone container with an overlap prefix of
    /// `ceil((max_pattern_len - 1) / block_size)` blocks so every
    /// boundary-straddling occurrence is found by exactly one owner; the
    /// gather step rebases positions, keeps each hit iff its **last**
    /// byte falls in the owner's responsibility span, merges issue
    /// reports, and sorts `(pos asc, len desc, id asc)` — byte-identical
    /// to a single node grepping the whole container.
    ///
    /// Falls back to single-shard routing when there is nothing to fan
    /// out (one healthy shard, a single-block container, an unknown
    /// dictionary, or an unparseable container — the shard's own reader
    /// produces the authoritative issue reports for that last case).
    pub fn grepz(&self, dict: &str, container: &[u8], timeout_ms: u32) -> Routed {
        self.grepz_traced(dict, container, timeout_ms, None)
    }

    /// [`Router::grepz`] with an inbound trace context. With tracing on,
    /// the fan-out records a `route` root span, one `scatter` span per
    /// block range (indexed by range number), and `attempt` spans for
    /// every shard try — including failover retries — nested inside.
    pub fn grepz_traced(
        &self,
        dict: &str,
        container: &[u8],
        timeout_ms: u32,
        inbound: Option<TraceCtx>,
    ) -> Routed {
        let started = Instant::now();
        self.metrics.requests.inc();
        self.ensure_some_healthy();
        let deadline =
            (timeout_ms > 0).then(|| started + Duration::from_millis(u64::from(timeout_ms)));
        let route = self.route_span("route", inbound);
        let rctx = route.as_ref().map(SpanGuard::ctx);
        let healthy = self.healthy_ids();
        let max_len = self
            .dicts
            .lock()
            .expect("dicts poisoned")
            .get(dict)
            .map(|d| d.max_len);
        let plan = max_len.and_then(|ml| {
            let layout = ContainerLayout::parse(container).ok()?;
            (healthy.len() > 1 && layout.num_blocks() > 1).then_some((ml, layout))
        });
        let Some((max_len, layout)) = plan else {
            // Single-shard path, upgraded to the cluster reply shape.
            let single = self.dispatch(
                &ranking(dict, self.backends.len()),
                deadline,
                rctx,
                &|c: &mut Client, remaining, actx| match c.op_traced(
                    wire::tag::GREPZ,
                    dict,
                    container,
                    remaining,
                    actx,
                ) {
                    Ok(Ok(WireResponse::ContainerHits {
                        version,
                        hits,
                        corrupt_blocks,
                    })) => Ok(Ok((version, hits, corrupt_blocks))),
                    Ok(Ok(other)) => Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("expected container hits, got {other:?}"),
                    )),
                    Ok(Err(e)) => Ok(Err(e)),
                    Err(e) => Err(e),
                },
            );
            let (result, failed_over) = match single {
                Ok(((version, hits, corrupt_blocks), fo)) => (
                    Ok(WireResponse::ClusterHits {
                        version,
                        degraded: fo || self.any_excluded(),
                        shards: 1,
                        hits,
                        corrupt_blocks,
                    }),
                    fo,
                ),
                Err(e) => (Err(e), false),
            };
            let routed = Routed {
                degraded: failed_over || self.any_excluded(),
                result,
            };
            self.finish(started, &routed);
            return routed;
        };

        // ---- scatter ----
        self.metrics.scatter_gathers.inc();
        let num_blocks = layout.num_blocks();
        let block_size = usize::try_from(layout.block_size).unwrap_or(usize::MAX);
        let total_raw = layout.raw_range(num_blocks - 1).end as u64;
        let overlap = max_len.saturating_sub(1).div_ceil(block_size.max(1));
        let k = healthy.len().min(num_blocks);
        // Contiguous balanced ranges: first `num_blocks % k` get one extra.
        let base = num_blocks / k;
        let extra = num_blocks % k;
        let mut ranges = Vec::with_capacity(k);
        let mut cursor = 0usize;
        for i in 0..k {
            let len = base + usize::from(i < extra);
            ranges.push(cursor..cursor + len);
            cursor += len;
        }

        type RangeOut = Result<(u64, Vec<Hit>, Vec<u64>, usize, bool), ClusterError>;
        // Ledger-free fan-out through the shared executor: scatter is
        // I/O-bound dispatch with no Pram in scope, one worker per range.
        let results: Vec<RangeOut> = pardict_exec::fan_out(ranges, |i, r| -> RangeOut {
            let assigned = healthy[i % healthy.len()];
            let layout_bs = block_size as u64;
            let scatter = match (&self.tracer, rctx) {
                (Some(t), Some(ctx)) => {
                    Some(t.start(ctx, "scatter", u64::try_from(i).unwrap_or(u64::MAX)))
                }
                _ => None,
            };
            let sctx = scatter.as_ref().map(SpanGuard::ctx);
            let slice_start = r.start.saturating_sub(overlap);
            let slice = slice_container(container, slice_start..r.end)
                .map_err(|_| ClusterError::NoBackends)?;
            // Failover order for this range: every shard, starting from
            // its assignee (excluded shards are skipped inside dispatch).
            let n = self.backends.len();
            let order: Vec<usize> = (0..n).map(|j| (assigned + j) % n).collect();
            let out = self.dispatch(
                &order,
                deadline,
                sctx,
                &|c: &mut Client, remaining, actx| match c.op_traced(
                    wire::tag::GREPZ,
                    dict,
                    &slice,
                    remaining,
                    actx,
                ) {
                    Ok(Ok(WireResponse::ContainerHits {
                        version,
                        hits,
                        corrupt_blocks,
                    })) => Ok(Ok((version, hits, corrupt_blocks))),
                    Ok(Ok(other)) => Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("expected container hits, got {other:?}"),
                    )),
                    Ok(Err(e)) => Ok(Err(e)),
                    Err(e) => Err(e),
                },
            )?;
            let ((version, hits, corrupt), failed_over) = out;
            let rebase = layout_bs * slice_start as u64;
            // Responsibility: a hit is ours iff its last byte lands in
            // [bs*r.start, min(bs*r.end, total_raw)).
            let own_start = layout_bs * r.start as u64;
            let own_end = (layout_bs * r.end as u64).min(total_raw);
            let hits: Vec<Hit> = hits
                .into_iter()
                .map(|h| Hit {
                    pos: h.pos + rebase,
                    ..h
                })
                .filter(|h| {
                    let last = h.pos + u64::from(h.len) - 1;
                    (own_start..own_end).contains(&last)
                })
                .collect();
            let corrupt: Vec<u64> = corrupt
                .into_iter()
                .map(|b| b + slice_start as u64)
                .filter(|b| (r.start as u64..r.end as u64).contains(b))
                .collect();
            Ok((version, hits, corrupt, assigned, failed_over))
        });

        // ---- gather ----
        let mut version = 0u64;
        let mut hits: Vec<Hit> = Vec::new();
        let mut corrupt: Vec<u64> = Vec::new();
        let mut shard_set = std::collections::BTreeSet::new();
        let mut any_failover = false;
        let mut err: Option<ClusterError> = None;
        for out in results {
            match out {
                Ok((v, h, c, shard, fo)) => {
                    version = version.max(v);
                    hits.extend(h);
                    corrupt.extend(c);
                    shard_set.insert(shard);
                    any_failover |= fo;
                    self.metrics.per_shard[shard].ranges.inc();
                }
                // First error wins; service errors outrank NoBackends
                // for diagnosability.
                Err(e) => {
                    if err.is_none() || matches!(err, Some(ClusterError::NoBackends)) {
                        err = Some(e);
                    }
                }
            }
        }
        let routed = if let Some(e) = err {
            // A range nobody could serve means the merged result would be
            // incomplete — that is a hard error, not a degraded success.
            Routed {
                degraded: any_failover || self.any_excluded(),
                result: Err(e),
            }
        } else {
            hits.sort_by(|a, b| {
                a.pos
                    .cmp(&b.pos)
                    .then(b.len.cmp(&a.len))
                    .then(a.id.cmp(&b.id))
            });
            corrupt.sort_unstable();
            corrupt.dedup();
            let degraded = any_failover || self.any_excluded();
            Routed {
                degraded,
                result: Ok(WireResponse::ClusterHits {
                    version,
                    degraded,
                    shards: u32::try_from(shard_set.len()).unwrap_or(u32::MAX),
                    hits,
                    corrupt_blocks: corrupt,
                }),
            }
        };
        self.finish(started, &routed);
        routed
    }

    /// Fetch and merge structured metrics from every healthy backend —
    /// the cluster-wide view of the engines' own books (router-side books
    /// live in [`Self::metrics`]).
    ///
    /// # Errors
    /// [`ClusterError::NoBackends`] when no shard answered.
    pub fn merged_stats(&self) -> Result<(MetricsSnapshot, bool), ClusterError> {
        let started = Instant::now();
        self.metrics.requests.inc();
        self.ensure_some_healthy();
        let mut merged: Option<MetricsSnapshot> = None;
        let mut answered = 0u32;
        for shard in 0..self.backends.len() {
            if !self.backends[shard].is_healthy() {
                continue;
            }
            match self.call_shard(shard, &|c: &mut Client| c.stats().map(Ok)) {
                Attempt::Ok(snap) => {
                    answered += 1;
                    merged = Some(match merged.take() {
                        Some(mut m) => {
                            m.merge(&snap);
                            m
                        }
                        None => snap,
                    });
                }
                Attempt::App(_) | Attempt::Down => {}
            }
        }
        let degraded = self.any_excluded()
            || answered < u32::try_from(self.backends.len()).unwrap_or(u32::MAX);
        let result = merged
            .map(|m| (m, degraded))
            .ok_or(ClusterError::NoBackends);
        let routed = Routed {
            degraded,
            result: match &result {
                Ok((_, _)) => Ok(WireResponse::Pong),
                Err(e) => Err(e.clone()),
            },
        };
        self.finish(started, &routed);
        result
    }

    /// The router's replicated-registry view as `(name, version,
    /// content_hash)` digests, sorted by name — the cluster-side answer
    /// to the `Dicts` wire request (versions are the highest any shard
    /// acknowledged; shards agree except transiently after a revival).
    #[must_use]
    pub fn dict_digests(&self) -> Vec<(String, u64, u64)> {
        let guard = self.dicts.lock().expect("dicts poisoned");
        let mut out: Vec<(String, u64, u64)> = guard
            .iter()
            .map(|(k, v)| (k.clone(), v.version, v.content_hash))
            .collect();
        out.sort();
        out
    }

    /// Human-readable cluster report: router books plus each backend's
    /// health line.
    #[must_use]
    pub fn report(&self) -> String {
        use std::fmt::Write as _;
        let mut out = self.metrics.report();
        let _ = writeln!(out);
        for b in &self.backends {
            let _ = writeln!(
                out,
                "backend {} at {} [{}]",
                b.id,
                b.addr,
                if b.is_healthy() {
                    "healthy"
                } else {
                    "excluded"
                }
            );
        }
        out
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        self.shutdown();
    }
}
