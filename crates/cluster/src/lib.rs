//! # pardict-cluster — sharded routing, scatter-gather, and failover
//!
//! One `pardict-service` node amortizes preprocessing across requests;
//! this crate spreads that story across N nodes. A front-end [`Router`]
//! speaks the existing wire codec on both sides, so clients and backends
//! are unchanged:
//!
//! * [`shard`] — rendezvous (highest-random-weight) hashing: a key's
//!   shard ranking is a pure function of `(key, shard count)`, giving
//!   minimal disruption on membership change and a deterministic
//!   failover order with no ring state.
//! * [`Router`] — *replicated registry, sharded work*: publishes
//!   broadcast to every healthy backend; per-request work routes to the
//!   key's primary with bounded, deadline-aware, exponential-backoff
//!   failover down the ranking. Container grep scatter-gathers: block
//!   ranges are re-framed as standalone containers
//!   ([`pardict_stream::slice_container`]) and fanned across all healthy
//!   shards — the shard-local work mirrors the paper's block-independent
//!   LZ1 decomposition — then merged back into exactly the single-node
//!   hit order.
//! * Failover semantics — transport failures and draining backends mark
//!   a shard's failure streak; at the threshold the shard is excluded
//!   and traffic re-routes. Responses carry a **degraded** flag (served
//!   after a failover, or while any shard is excluded) instead of
//!   turning correct results into errors; excluded shards rejoin via
//!   revival probes that first ask the backend what it already holds
//!   (a `--data-dir` backend recovers dictionaries from its own store
//!   on boot) and replay only what is missing or stale by content hash.
//! * [`ClusterMetrics`] — router-side books with per-shard counters and
//!   a `check_accounting` identity: every accepted request is charged to
//!   exactly one outcome, no matter how many attempts it took.
//! * [`RouterServer`] — the TCP front end; [`selftest`] — three
//!   in-process backends, a seeded mixed workload verified against a
//!   single-node oracle, and a deterministic mid-run backend kill that
//!   must leave the run degraded but correct.

#![warn(missing_docs)]

pub mod backend;
pub mod front;
pub mod metrics;
pub mod router;
pub mod selftest;
pub mod shard;

pub use backend::Backend;
pub use front::RouterServer;
pub use metrics::{ClusterMetrics, ShardStats};
pub use router::{ClusterConfig, ClusterError, DeltaSummary, PublishSummary, Routed, Router};
