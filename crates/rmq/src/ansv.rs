//! All nearest smaller values (Lemma 2.4).
//!
//! [`ansv_seq`] is the classic linear stack pass (used as an oracle and in
//! sequential baselines). [`ansv_par`] is the blocked parallel version:
//! per-block stack passes resolve most elements; the rest search the
//! block-minima sparse table by doubling + binary search. `O(log n)` depth;
//! work is `O(n)` on typical inputs and `O(n log n)` adversarially — the
//! BBGSV `O(log log n)`-time algorithm the paper cites shares the blocked
//! skeleton but merges across blocks more cleverly (see DESIGN.md).

use crate::sparse::SparseTable;
use pardict_pram::{ceil_log2, Pram};

/// Which direction to look for the nearest qualifying element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// Nearest `j < i`.
    Left,
    /// Nearest `j > i`.
    Right,
}

/// Comparison used for "smaller".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strictness {
    /// `a[j] < a[i]`.
    Strict,
    /// `a[j] <= a[i]`.
    WeakOrEqual,
}

/// Sentinel meaning "no qualifying element".
pub const NONE: usize = usize::MAX;

#[inline]
fn qualifies(candidate: i64, x: i64, strict: Strictness) -> bool {
    match strict {
        Strictness::Strict => candidate < x,
        Strictness::WeakOrEqual => candidate <= x,
    }
}

/// Sequential stack ANSV: `out[i]` is the nearest qualifying index on the
/// chosen side, or [`NONE`]. `O(n)` time.
#[must_use]
pub fn ansv_seq(xs: &[i64], side: Side, strict: Strictness) -> Vec<usize> {
    let n = xs.len();
    let mut out = vec![NONE; n];
    let mut stack: Vec<usize> = Vec::new();
    let order: Box<dyn Iterator<Item = usize>> = match side {
        Side::Left => Box::new(0..n),
        Side::Right => Box::new((0..n).rev()),
    };
    for i in order {
        while let Some(&top) = stack.last() {
            if qualifies(xs[top], xs[i], strict) {
                break;
            }
            stack.pop();
        }
        out[i] = stack.last().copied().unwrap_or(NONE);
        stack.push(i);
    }
    out
}

/// Parallel blocked ANSV; identical output to [`ansv_seq`].
#[must_use]
pub fn ansv_par(pram: &Pram, xs: &[i64], side: Side, strict: Strictness) -> Vec<usize> {
    match side {
        Side::Left => ansv_par_left(pram, xs, strict),
        Side::Right => {
            let n = xs.len();
            let rev: Vec<i64> = pram.tabulate(n, |i| xs[n - 1 - i]);
            let ans = ansv_par_left(pram, &rev, strict);
            pram.tabulate(n, |i| {
                let a = ans[n - 1 - i];
                if a == NONE {
                    NONE
                } else {
                    n - 1 - a
                }
            })
        }
    }
}

fn ansv_par_left(pram: &Pram, xs: &[i64], strict: Strictness) -> Vec<usize> {
    let n = xs.len();
    if n == 0 {
        return Vec::new();
    }
    let b = (ceil_log2(n) as usize).max(1);
    let nblocks = n.div_ceil(b);

    // Block minima (leftmost index of the minimum, for the in-block scan).
    let blockmin: Vec<i64> = pram.tabulate_costed(nblocks, |k| {
        let lo = k * b;
        let hi = (lo + b).min(n);
        let mut m = i64::MAX;
        for &x in &xs[lo..hi] {
            m = m.min(x);
        }
        (m, (hi - lo) as u64)
    });
    let st = SparseTable::new_min(pram, &blockmin);

    // Local stack pass per block.
    let local: Vec<Vec<usize>> = pram.tabulate_costed(nblocks, |k| {
        let lo = k * b;
        let hi = (lo + b).min(n);
        let mut out = vec![NONE; hi - lo];
        let mut stack: Vec<usize> = Vec::new();
        for i in lo..hi {
            while let Some(&top) = stack.last() {
                if qualifies(xs[top], xs[i], strict) {
                    break;
                }
                stack.pop();
            }
            out[i - lo] = stack.last().copied().unwrap_or(NONE);
            stack.push(i);
        }
        (out, (hi - lo) as u64 * 2)
    });

    // Cross-block resolution for the unresolved.
    pram.tabulate_costed(n, |i| {
        let k = i / b;
        let within = local[k][i - k * b];
        if within != NONE {
            return (within, 1);
        }
        if k == 0 {
            return (NONE, 1);
        }
        // Doubling search over block minima for the nearest qualifying
        // block strictly left of k.
        let mut ops = 1u64;
        let mut span = 1usize;
        let mut hi = k; // exclusive
        let found_range = loop {
            let lo = hi.saturating_sub(span);
            if lo == hi {
                break None;
            }
            ops += 1;
            if qualifies(st.query_value(lo, hi - 1), xs[i], strict) {
                break Some((lo, hi - 1));
            }
            if lo == 0 {
                break None;
            }
            hi = lo;
            span *= 2;
        };
        let Some((mut lo, mut rhi)) = found_range else {
            return (NONE, ops);
        };
        // Binary search for the rightmost qualifying block in [lo, rhi].
        while lo < rhi {
            let mid = (lo + rhi).div_ceil(2);
            ops += 1;
            if qualifies(st.query_value(mid, rhi), xs[i], strict) {
                lo = mid;
            } else {
                rhi = mid - 1;
            }
        }
        // Rightmost qualifying element within block `lo`.
        let blo = lo * b;
        let bhi = ((lo + 1) * b).min(n);
        for j in (blo..bhi).rev() {
            ops += 1;
            if qualifies(xs[j], xs[i], strict) {
                return (j, ops);
            }
        }
        unreachable!("block minima promised a qualifying element");
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pardict_pram::{Pram, SplitMix64};

    fn naive(xs: &[i64], side: Side, strict: Strictness) -> Vec<usize> {
        let n = xs.len();
        (0..n)
            .map(|i| {
                let mut best = NONE;
                match side {
                    Side::Left => {
                        for j in (0..i).rev() {
                            if qualifies(xs[j], xs[i], strict) {
                                best = j;
                                break;
                            }
                        }
                    }
                    Side::Right => {
                        for j in i + 1..n {
                            if qualifies(xs[j], xs[i], strict) {
                                best = j;
                                break;
                            }
                        }
                    }
                }
                best
            })
            .collect()
    }

    fn all_variants(xs: &[i64]) {
        let pram = Pram::seq();
        for side in [Side::Left, Side::Right] {
            for strict in [Strictness::Strict, Strictness::WeakOrEqual] {
                let want = naive(xs, side, strict);
                assert_eq!(ansv_seq(xs, side, strict), want, "seq {side:?} {strict:?}");
                assert_eq!(
                    ansv_par(&pram, xs, side, strict),
                    want,
                    "par {side:?} {strict:?}"
                );
            }
        }
    }

    #[test]
    fn small_arrays() {
        all_variants(&[]);
        all_variants(&[5]);
        all_variants(&[2, 1, 2]);
        all_variants(&[1, 1, 1, 1]);
        all_variants(&[3, 1, 4, 1, 5, 9, 2, 6]);
    }

    #[test]
    fn monotone_arrays() {
        let inc: Vec<i64> = (0..200).collect();
        let dec: Vec<i64> = (0..200).rev().collect();
        all_variants(&inc);
        all_variants(&dec);
    }

    #[test]
    fn random_arrays() {
        let mut rng = SplitMix64::new(77);
        for _ in 0..4 {
            let xs: Vec<i64> = (0..700).map(|_| rng.next_below(30) as i64).collect();
            all_variants(&xs);
        }
    }

    #[test]
    fn sawtooth_stress() {
        let xs: Vec<i64> = (0..1000)
            .map(|i| i64::from(i % 17 == 0) * -5 + (i % 7) as i64)
            .collect();
        all_variants(&xs);
    }

    #[test]
    fn par_depth_is_logarithmic() {
        let pram = Pram::seq();
        let mut rng = SplitMix64::new(3);
        let n = 1 << 15;
        let xs: Vec<i64> = (0..n).map(|_| rng.next_below(1000) as i64).collect();
        let _ = ansv_par(&pram, &xs, Side::Left, Strictness::Strict);
        let c = pram.cost();
        assert!(c.depth < 40 * u64::from(ceil_log2(n)), "depth {}", c.depth);
    }
}
