//! Min-cartesian trees from arrays, via ANSV.
//!
//! The cartesian tree is the bridge from *array* range-minimum queries to
//! *tree* LCA queries (and, in `pardict-suffix`, from LCP arrays to suffix
//! trees): node `i`'s parent is whichever of its nearest smaller neighbours
//! is larger. Using `≤` on the left and `<` on the right makes the tree
//! unique with the *leftmost* minimum as the root of every subrange.

use crate::ansv::{ansv_par, Side, Strictness, NONE};
use pardict_pram::Pram;

/// Parent array of the min-cartesian tree of `xs` (`parent[root] == root`).
///
/// Expected `O(n)` work, `O(log n)` depth (one ANSV pair plus a round).
#[must_use]
pub fn cartesian_parents(pram: &Pram, xs: &[i64]) -> Vec<usize> {
    let n = xs.len();
    if n == 0 {
        return Vec::new();
    }
    let left = ansv_par(pram, xs, Side::Left, Strictness::WeakOrEqual);
    let right = ansv_par(pram, xs, Side::Right, Strictness::Strict);
    pram.tabulate(n, |i| {
        let (l, r) = (left[i], right[i]);
        match (l == NONE, r == NONE) {
            (true, true) => i, // global (leftmost) minimum = root
            (true, false) => r,
            (false, true) => l,
            (false, false) => {
                // The parent is the larger (deeper) of the two smaller
                // neighbours. On equal values the right one wins: among
                // equal minima the leftmost is the subrange root, so the
                // right equal value is the deeper ancestor.
                if xs[l] > xs[r] {
                    l
                } else {
                    r
                }
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pardict_pram::{Pram, SplitMix64};

    /// Check the defining property: for every pair (l, r), the leftmost
    /// minimum of xs[l..=r] is an ancestor of both l and r, and no deeper
    /// common ancestor exists — equivalently, LCA(l, r) == leftmost argmin.
    fn check_rmq_property(xs: &[i64]) {
        let pram = Pram::seq();
        let parent = cartesian_parents(&pram, xs);
        let n = xs.len();
        let ancestors = |mut v: usize| -> Vec<usize> {
            let mut path = vec![v];
            while parent[v] != v {
                v = parent[v];
                path.push(v);
            }
            path
        };
        for l in 0..n {
            for r in l..n.min(l + 25) {
                let mut best = l;
                for i in l + 1..=r {
                    if xs[i] < xs[best] {
                        best = i;
                    }
                }
                // LCA by path intersection.
                let pa: Vec<usize> = ancestors(l);
                let pb: Vec<usize> = ancestors(r);
                let lca = *pa
                    .iter()
                    .find(|v| pb.contains(v))
                    .expect("common root exists");
                assert_eq!(lca, best, "range [{l},{r}] xs={xs:?}");
            }
        }
    }

    #[test]
    fn simple_cases() {
        check_rmq_property(&[2, 1, 2]);
        check_rmq_property(&[1, 2, 3, 4]);
        check_rmq_property(&[4, 3, 2, 1]);
        check_rmq_property(&[1, 1, 1]);
        check_rmq_property(&[5]);
    }

    #[test]
    fn random_with_duplicates() {
        let mut rng = SplitMix64::new(13);
        for _ in 0..5 {
            let xs: Vec<i64> = (0..120).map(|_| rng.next_below(6) as i64).collect();
            check_rmq_property(&xs);
        }
    }

    #[test]
    fn root_is_leftmost_minimum() {
        let pram = Pram::seq();
        let xs = vec![3i64, 0, 2, 0, 1];
        let parent = cartesian_parents(&pram, &xs);
        let roots: Vec<usize> = (0..xs.len()).filter(|&v| parent[v] == v).collect();
        assert_eq!(roots, vec![1]);
    }

    #[test]
    fn empty() {
        let pram = Pram::seq();
        assert!(cartesian_parents(&pram, &[]).is_empty());
    }
}
