#![warn(missing_docs)]

//! # pardict-rmq — range queries and order structures
//!
//! The paper's Lemma 2.3 (range maxima with O(1) queries), Lemma 2.4 (all
//! nearest smaller values), and the LCA machinery implicit in Lemma 2.6 and
//! §3.2 all live here:
//!
//! * [`SparseTable`] — O(n log n)-work, O(1)-query RMQ; the workhorse for
//!   moderate sizes and the oracle for everything else.
//! * [`ansv_seq`] / [`ansv_par`] — all nearest smaller values, sequential
//!   stack and blocked-doubling parallel versions (Lemma 2.4).
//! * [`cartesian_parents`] — min-cartesian tree of an array via ANSV.
//! * [`Pm1Rmq`] — the Berkman–Vishkin / four-russians ±1 RMQ: O(n) work,
//!   O(1) queries, built over Euler-tour depth sequences.
//! * [`TreeLca`] — O(1) LCA for a rooted forest = Euler tour + [`Pm1Rmq`].
//! * [`LinearRmq`] — O(n)-work O(1)-query RMQ for *general* arrays by the
//!   full cartesian-tree → Euler-tour → ±1 reduction; this is what keeps
//!   Lemma 2.3-style tables inside the paper's linear preprocessing budget.
//!
//! ```
//! use pardict_pram::Pram;
//! use pardict_rmq::LinearRmq;
//!
//! let pram = Pram::seq();
//! let xs = vec![3i64, 1, 4, 1, 5, 9, 2, 6];
//! let rmq = LinearRmq::new_min(&pram, &xs, 42);
//! assert_eq!(rmq.query(2, 6), 3); // leftmost minimum of [4,1,5,9,2]
//! ```

mod ansv;
mod cartesian;
mod lca;
mod linear;
mod pm1;
mod sparse;

pub use ansv::{ansv_par, ansv_seq, Side, Strictness};
pub use cartesian::cartesian_parents;
pub use lca::TreeLca;
pub use linear::LinearRmq;
pub use pm1::Pm1Rmq;
pub use sparse::SparseTable;

#[cfg(test)]
mod proptests {
    use super::*;
    use pardict_pram::Pram;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn sparse_and_linear_rmq_agree_with_naive(
            xs in prop::collection::vec(-50i64..50, 1..400),
            queries in prop::collection::vec((0usize..400, 0usize..400), 1..40),
        ) {
            let pram = Pram::seq();
            let st = SparseTable::new_min(&pram, &xs);
            let lin = LinearRmq::new_min(&pram, &xs, 7);
            for (a, b) in queries {
                let (l, r) = ((a % xs.len()).min(b % xs.len()), (a % xs.len()).max(b % xs.len()));
                let naive = (l..=r).min_by_key(|&i| (xs[i], i)).unwrap();
                prop_assert_eq!(st.query(l, r), naive);
                prop_assert_eq!(lin.query(l, r), naive);
            }
        }

        #[test]
        fn ansv_par_equals_seq(xs in prop::collection::vec(-20i64..20, 0..600)) {
            let pram = Pram::seq();
            for side in [Side::Left, Side::Right] {
                for strict in [Strictness::Strict, Strictness::WeakOrEqual] {
                    prop_assert_eq!(
                        ansv_par(&pram, &xs, side, strict),
                        ansv_seq(&xs, side, strict)
                    );
                }
            }
        }

        #[test]
        fn cartesian_root_is_global_leftmost_min(xs in prop::collection::vec(0i64..10, 1..300)) {
            let pram = Pram::seq();
            let parent = cartesian_parents(&pram, &xs);
            let roots: Vec<usize> = (0..xs.len()).filter(|&v| parent[v] == v).collect();
            prop_assert_eq!(roots.len(), 1);
            let want = (0..xs.len()).min_by_key(|&i| (xs[i], i)).unwrap();
            prop_assert_eq!(roots[0], want);
        }
    }
}
