//! Linear-work O(1)-query RMQ for general arrays (Lemma 2.3).
//!
//! The full reduction: array → min-cartesian tree (ANSV) → Euler tour →
//! ±1 RMQ. Preprocessing is `O(n)` work / `O(log n)` depth, which is what
//! keeps Lemma 2.3-style tables (e.g. the legal-length maxima of Step 2A)
//! inside the paper's linear preprocessing budget — a sparse table alone
//! would silently spend `O(n log n)`.

use crate::cartesian::cartesian_parents;
use crate::lca::TreeLca;
use pardict_graph::Forest;
use pardict_pram::Pram;

/// Direction of the query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Min,
    Max,
}

/// O(n)-work, O(1)-query range min/max (leftmost argbest on ties).
#[derive(Debug, Clone)]
pub struct LinearRmq {
    lca: TreeLca,
    kind: Kind,
}

impl LinearRmq {
    /// Range-minimum structure.
    #[must_use]
    pub fn new_min(pram: &Pram, values: &[i64], seed: u64) -> Self {
        Self::build(pram, values, seed, Kind::Min)
    }

    /// Range-maximum structure (Lemma 2.3 flavour).
    #[must_use]
    pub fn new_max(pram: &Pram, values: &[i64], seed: u64) -> Self {
        Self::build(pram, values, seed, Kind::Max)
    }

    fn build(pram: &Pram, values: &[i64], seed: u64, kind: Kind) -> Self {
        let vals: Vec<i64> = match kind {
            Kind::Min => values.to_vec(),
            Kind::Max => pram.map(values, |_, &v| -v),
        };
        let parents = cartesian_parents(pram, &vals);
        let forest = Forest::from_parents(pram, &parents);
        let lca = TreeLca::new(pram, &forest, seed ^ 0x11CA);
        Self { lca, kind }
    }

    /// Number of elements (0 for an empty build).
    #[must_use]
    pub fn len(&self) -> usize {
        self.lca.tour().num_nodes()
    }

    /// True when built over an empty array.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Index of the best element in the inclusive range `[l, r]`
    /// (leftmost on ties). O(1).
    #[must_use]
    pub fn query(&self, l: usize, r: usize) -> usize {
        assert!(l <= r && r < self.len(), "bad range [{l}, {r}]");
        self.lca.lca(l, r)
    }

    /// Whether this is a min or max structure.
    #[must_use]
    pub fn is_min(&self) -> bool {
        self.kind == Kind::Min
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::SparseTable;
    use pardict_pram::{ceil_log2, Pram, SplitMix64};

    #[test]
    fn min_agrees_with_sparse_table() {
        let pram = Pram::seq();
        let mut rng = SplitMix64::new(21);
        for _ in 0..3 {
            let xs: Vec<i64> = (0..400).map(|_| rng.next_below(12) as i64).collect();
            let lin = LinearRmq::new_min(&pram, &xs, 5);
            let st = SparseTable::new_min(&pram, &xs);
            for _ in 0..1000 {
                let l = rng.next_below(xs.len() as u64) as usize;
                let r = l + rng.next_below((xs.len() - l) as u64) as usize;
                assert_eq!(lin.query(l, r), st.query(l, r), "[{l},{r}]");
            }
        }
    }

    #[test]
    fn max_agrees_with_sparse_table() {
        let pram = Pram::seq();
        let mut rng = SplitMix64::new(22);
        let xs: Vec<i64> = (0..300).map(|_| rng.next_below(9) as i64 - 4).collect();
        let lin = LinearRmq::new_max(&pram, &xs, 6);
        let st = SparseTable::new_max(&pram, &xs);
        for l in 0..xs.len() {
            for r in l..xs.len().min(l + 30) {
                assert_eq!(lin.query(l, r), st.query(l, r), "[{l},{r}]");
            }
        }
        assert!(!lin.is_min());
    }

    #[test]
    fn preprocessing_work_is_linear() {
        let mut ratios = Vec::new();
        for n in [1usize << 12, 1 << 15, 1 << 17] {
            let pram = Pram::seq();
            let mut rng = SplitMix64::new(2);
            let xs: Vec<i64> = (0..n).map(|_| rng.next_below(1000) as i64).collect();
            let _ = LinearRmq::new_min(&pram, &xs, 7);
            ratios.push(pram.cost().work as f64 / n as f64);
        }
        assert!(
            ratios[2] <= ratios[0] * 1.5 + 2.0,
            "LinearRmq preprocessing superlinear: {ratios:?}"
        );
    }

    #[test]
    fn depth_is_logarithmic() {
        let n = 1 << 15;
        let pram = Pram::seq();
        let mut rng = SplitMix64::new(3);
        let xs: Vec<i64> = (0..n).map(|_| rng.next_below(50) as i64).collect();
        let _ = LinearRmq::new_min(&pram, &xs, 8);
        let d = pram.cost().depth;
        assert!(d < 80 * u64::from(ceil_log2(n)), "depth {d}");
    }

    #[test]
    fn singleton() {
        let pram = Pram::seq();
        let lin = LinearRmq::new_min(&pram, &[7], 1);
        assert_eq!(lin.query(0, 0), 0);
        assert_eq!(lin.len(), 1);
    }
}
