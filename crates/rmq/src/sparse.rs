//! Sparse-table RMQ: O(n log n) construction, O(1) queries.

use pardict_pram::{ceil_log2, Pram};

/// Index-returning sparse table for range minimum (or maximum) queries.
///
/// Stores, for every power-of-two length, the index of the best element of
/// each window; ties resolve to the *leftmost* index, which downstream code
/// (cartesian trees, suffix-tree node representatives) relies on.
#[derive(Debug, Clone)]
pub struct SparseTable {
    /// Level k holds best-index of windows `[i, i + 2^k)`.
    levels: Vec<Vec<u32>>,
    values: Vec<i64>,
    min: bool,
}

impl SparseTable {
    /// Build a range-minimum table.
    #[must_use]
    pub fn new_min(pram: &Pram, values: &[i64]) -> Self {
        Self::build(pram, values, true)
    }

    /// Build a range-maximum table (Lemma 2.3 flavour).
    #[must_use]
    pub fn new_max(pram: &Pram, values: &[i64]) -> Self {
        Self::build(pram, values, false)
    }

    fn build(pram: &Pram, values: &[i64], min: bool) -> Self {
        let n = values.len();
        let mut levels: Vec<Vec<u32>> = Vec::new();
        if n > 0 {
            levels.push(pram.tabulate(n, |i| i as u32));
            let max_k = ceil_log2(n) as usize;
            for k in 1..=max_k {
                let half = 1usize << (k - 1);
                if half >= n {
                    break;
                }
                let prev = &levels[k - 1];
                let width = n - (1usize << k).min(n) + 1;
                let next: Vec<u32> = pram.tabulate(width, |i| {
                    let a = prev[i];
                    let b = prev[(i + half).min(prev.len() - 1)];
                    pick(values, a, b, min)
                });
                levels.push(next);
            }
        }
        Self {
            levels,
            values: values.to_vec(),
            min,
        }
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when built over an empty array.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Index of the best element in the **inclusive** range `[l, r]`;
    /// leftmost on ties. O(1).
    #[must_use]
    pub fn query(&self, l: usize, r: usize) -> usize {
        assert!(l <= r && r < self.len(), "bad range [{l}, {r}]");
        let k = usize::BITS as usize - 1 - (r - l + 1).leading_zeros() as usize;
        let a = self.levels[k][l];
        let b = self.levels[k][r + 1 - (1 << k)];
        pick(&self.values, a, b, self.min) as usize
    }

    /// The best value in `[l, r]`.
    #[must_use]
    pub fn query_value(&self, l: usize, r: usize) -> i64 {
        self.values[self.query(l, r)]
    }
}

/// Choose between indices `a` (earlier window) and `b`, leftmost on ties.
#[inline]
fn pick(values: &[i64], a: u32, b: u32, min: bool) -> u32 {
    let (va, vb) = (values[a as usize], values[b as usize]);
    let a_wins = if min {
        va < vb || (va == vb && a <= b)
    } else {
        va > vb || (va == vb && a <= b)
    };
    if a_wins {
        a
    } else {
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pardict_pram::{Pram, SplitMix64};

    fn naive_argmin(xs: &[i64], l: usize, r: usize) -> usize {
        let mut best = l;
        for i in l + 1..=r {
            if xs[i] < xs[best] {
                best = i;
            }
        }
        best
    }

    fn naive_argmax(xs: &[i64], l: usize, r: usize) -> usize {
        let mut best = l;
        for i in l + 1..=r {
            if xs[i] > xs[best] {
                best = i;
            }
        }
        best
    }

    #[test]
    fn min_queries_match_naive() {
        let pram = Pram::seq();
        let mut rng = SplitMix64::new(1);
        let xs: Vec<i64> = (0..300).map(|_| rng.next_below(50) as i64).collect();
        let st = SparseTable::new_min(&pram, &xs);
        for l in 0..xs.len() {
            for r in l..xs.len().min(l + 40) {
                assert_eq!(st.query(l, r), naive_argmin(&xs, l, r), "[{l},{r}]");
            }
        }
    }

    #[test]
    fn max_queries_match_naive() {
        let pram = Pram::seq();
        let mut rng = SplitMix64::new(2);
        let xs: Vec<i64> = (0..200).map(|_| rng.next_below(10) as i64 - 5).collect();
        let st = SparseTable::new_max(&pram, &xs);
        for l in 0..xs.len() {
            for r in l..xs.len() {
                assert_eq!(st.query(l, r), naive_argmax(&xs, l, r), "[{l},{r}]");
            }
        }
    }

    #[test]
    fn ties_go_leftmost() {
        let pram = Pram::seq();
        let xs = vec![5i64, 3, 3, 3, 7];
        let st = SparseTable::new_min(&pram, &xs);
        assert_eq!(st.query(0, 4), 1);
        assert_eq!(st.query(2, 4), 2);
        let st = SparseTable::new_max(&pram, &xs);
        assert_eq!(st.query(1, 3), 1);
    }

    #[test]
    fn singleton_and_full_range() {
        let pram = Pram::seq();
        let xs = vec![42i64];
        let st = SparseTable::new_min(&pram, &xs);
        assert_eq!(st.query(0, 0), 0);
        assert_eq!(st.query_value(0, 0), 42);
    }

    #[test]
    #[should_panic(expected = "bad range")]
    fn rejects_reversed_range() {
        let pram = Pram::seq();
        let st = SparseTable::new_min(&pram, &[1, 2, 3]);
        let _ = st.query(2, 1);
    }
}
