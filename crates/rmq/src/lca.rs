//! O(1) lowest common ancestors: Euler tour + ±1 RMQ.

use crate::pm1::Pm1Rmq;
use pardict_graph::{EulerTour, Forest};
use pardict_pram::Pram;

/// Constant-time LCA over a rooted forest.
///
/// Preprocessing is `O(n)` work / `O(log n)` depth: the forest's Euler tour
/// (list ranking) plus the four-russians ±1 RMQ over its depth sequence.
/// This is the engine behind Lemma 2.6's O(1) string LCP queries and the
/// skeleton-tree LCAs of §3.2.
#[derive(Debug, Clone)]
pub struct TreeLca {
    tour: EulerTour,
    rmq: Pm1Rmq,
}

impl TreeLca {
    /// Build for `forest`.
    #[must_use]
    pub fn new(pram: &Pram, forest: &Forest, seed: u64) -> Self {
        let tour = EulerTour::build(pram, forest, seed);
        Self::from_tour(pram, tour)
    }

    /// Build from a pre-computed Euler tour.
    #[must_use]
    pub fn from_tour(pram: &Pram, tour: EulerTour) -> Self {
        let rmq = Pm1Rmq::new(pram, &tour.depth);
        Self { tour, rmq }
    }

    /// The underlying Euler tour (entry/exit times, depths, roots).
    #[must_use]
    pub fn tour(&self) -> &EulerTour {
        &self.tour
    }

    /// Lowest common ancestor of `u` and `v`.
    ///
    /// `u` and `v` must belong to the same tree (checked in debug builds).
    #[must_use]
    pub fn lca(&self, u: usize, v: usize) -> usize {
        debug_assert_eq!(
            self.tour.root_of[u], self.tour.root_of[v],
            "lca of nodes in different trees"
        );
        let (a, b) = {
            let (fu, fv) = (self.tour.first[u], self.tour.first[v]);
            if fu <= fv {
                (fu, fv)
            } else {
                (fv, fu)
            }
        };
        self.tour.seq[self.rmq.argmin(a, b)]
    }

    /// Depth of `v` in its tree.
    #[must_use]
    pub fn depth(&self, v: usize) -> u32 {
        self.tour.node_depth(v)
    }

    /// O(1) inclusive ancestor test.
    #[must_use]
    pub fn is_ancestor(&self, u: usize, v: usize) -> bool {
        self.tour.is_ancestor(u, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pardict_pram::{Pram, SplitMix64};

    fn naive_lca(parent: &[usize], mut u: usize, mut v: usize) -> usize {
        let depth = |mut x: usize| {
            let mut d = 0;
            while parent[x] != x {
                x = parent[x];
                d += 1;
            }
            d
        };
        let (mut du, mut dv) = (depth(u), depth(v));
        while du > dv {
            u = parent[u];
            du -= 1;
        }
        while dv > du {
            v = parent[v];
            dv -= 1;
        }
        while u != v {
            u = parent[u];
            v = parent[v];
        }
        u
    }

    fn random_tree(n: usize, seed: u64) -> Vec<usize> {
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|v: usize| {
                if v == 0 {
                    0
                } else {
                    rng.next_below(v as u64) as usize
                }
            })
            .collect()
    }

    #[test]
    fn matches_naive_on_random_trees() {
        let pram = Pram::seq();
        for (n, seed) in [(2usize, 1u64), (30, 2), (500, 3)] {
            let parent = random_tree(n, seed);
            let f = Forest::from_parents(&pram, &parent);
            let lca = TreeLca::new(&pram, &f, seed);
            let mut rng = SplitMix64::new(seed + 7);
            for _ in 0..300 {
                let u = rng.next_below(n as u64) as usize;
                let v = rng.next_below(n as u64) as usize;
                assert_eq!(lca.lca(u, v), naive_lca(&parent, u, v), "u={u} v={v}");
            }
        }
    }

    #[test]
    fn lca_of_node_with_itself_and_ancestor() {
        let pram = Pram::seq();
        let parent = vec![0, 0, 1, 2, 3];
        let f = Forest::from_parents(&pram, &parent);
        let lca = TreeLca::new(&pram, &f, 1);
        assert_eq!(lca.lca(4, 4), 4);
        assert_eq!(lca.lca(4, 1), 1);
        assert_eq!(lca.lca(1, 4), 1);
        assert_eq!(lca.depth(4), 4);
        assert!(lca.is_ancestor(0, 4));
    }

    #[test]
    fn works_on_forest_within_trees() {
        let pram = Pram::seq();
        // Two trees: {0,1,2} rooted at 0 and {3,4} rooted at 3.
        let f = Forest::from_parents(&pram, &[0, 0, 1, 3, 3]);
        let lca = TreeLca::new(&pram, &f, 2);
        assert_eq!(lca.lca(1, 2), 1);
        assert_eq!(lca.lca(2, 0), 0);
        assert_eq!(lca.lca(3, 4), 3);
    }

    #[test]
    fn path_tree() {
        let pram = Pram::seq();
        let n = 300;
        let parent: Vec<usize> = (0..n).map(|v: usize| v.saturating_sub(1)).collect();
        let f = Forest::from_parents(&pram, &parent);
        let lca = TreeLca::new(&pram, &f, 3);
        assert_eq!(lca.lca(120, 250), 120);
        assert_eq!(lca.lca(299, 0), 0);
    }
}
