//! ±1 RMQ: linear-work preprocessing, O(1) queries (Berkman–Vishkin /
//! four-russians).
//!
//! Input: an array whose adjacent entries differ by ±1 — exactly the depth
//! sequence of an Euler tour. Blocks of `b ≈ ½·log₂ n` entries are encoded
//! as `(b−1)`-bit shape masks; a shared table answers in-block queries per
//! mask, and a sparse table over the `n/b` block minima answers the
//! cross-block part. Total preprocessing work: `O(n + √n·log²n + (n/b)·log n)
//! = O(n)`.
//!
//! Forest depth sequences contain 0-steps at tree boundaries; they are
//! encoded arbitrarily, which is sound because valid queries never span
//! trees (`pardict-graph`'s tours lay trees out contiguously).

use crate::sparse::SparseTable;
use pardict_pram::{ceil_log2, Pram};

/// O(1) range-minimum (leftmost argmin) structure for ±1 arrays.
#[derive(Debug, Clone)]
pub struct Pm1Rmq {
    values: Vec<u32>,
    block: usize,
    /// Shape mask of each block.
    masks: Vec<u32>,
    /// `tables[mask][i * block + j]` = in-block argmin offset for `[i, j]`.
    tables: Vec<Vec<u8>>,
    /// Leftmost argmin position (global index) of each block.
    block_argmin: Vec<usize>,
    /// Sparse table over block minimum values.
    summary: SparseTable,
}

impl Pm1Rmq {
    /// Build over `values`. `O(n)` work, `O(log n)` depth.
    #[must_use]
    pub fn new(pram: &Pram, values: &[u32]) -> Self {
        let n = values.len();
        let b = ((ceil_log2(n.max(2)) as usize) / 2).max(2);
        let nblocks = n.div_ceil(b).max(1);

        // Shape masks: bit t set iff the step from offset t to t+1 rises.
        let masks: Vec<u32> = pram.tabulate_costed(nblocks, |k| {
            let lo = k * b;
            let hi = (lo + b).min(n);
            let mut m = 0u32;
            for t in 0..b - 1 {
                if lo + t + 1 < hi && values[lo + t + 1] > values[lo + t] {
                    m |= 1 << t;
                }
            }
            (m, b as u64)
        });

        // Shared four-russians tables (built once per mask value; the mask
        // space is O(√n), sublinear).
        let nmasks = 1usize << (b - 1);
        let tables: Vec<Vec<u8>> = pram.tabulate_costed(nmasks, |mask| {
            let mut rel = vec![0i32; b];
            for t in 0..b - 1 {
                rel[t + 1] = rel[t] + if mask >> t & 1 == 1 { 1 } else { -1 };
            }
            let mut table = vec![0u8; b * b];
            for i in 0..b {
                let mut arg = i;
                for j in i..b {
                    if rel[j] < rel[arg] {
                        arg = j;
                    }
                    table[i * b + j] = arg as u8;
                }
            }
            (table, (b * b) as u64)
        });

        // Leftmost argmin of each block, and the summary sparse table.
        let block_argmin: Vec<usize> = pram.tabulate_costed(nblocks, |k| {
            let lo = k * b;
            let hi = (lo + b).min(n);
            let mut arg = lo;
            for i in lo..hi {
                if values[i] < values[arg] {
                    arg = i;
                }
            }
            (arg, (hi - lo) as u64)
        });
        let block_min: Vec<i64> = pram.map(&block_argmin, |_, &a| {
            if values.is_empty() {
                0
            } else {
                i64::from(values[a])
            }
        });
        let summary = SparseTable::new_min(pram, &block_min);

        Self {
            values: values.to_vec(),
            block: b,
            masks,
            tables,
            block_argmin,
            summary,
        }
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when built over an empty array.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// In-block leftmost argmin for global inclusive range inside block `k`.
    #[inline]
    fn in_block(&self, k: usize, l: usize, r: usize) -> usize {
        let lo = k * self.block;
        let t = &self.tables[self.masks[k] as usize];
        lo + t[(l - lo) * self.block + (r - lo)] as usize
    }

    /// Leftmost index of the minimum value in the inclusive range `[l, r]`.
    /// O(1).
    #[must_use]
    pub fn argmin(&self, l: usize, r: usize) -> usize {
        assert!(l <= r && r < self.values.len(), "bad range [{l}, {r}]");
        let (kl, kr) = (l / self.block, r / self.block);
        if kl == kr {
            return self.in_block(kl, l, r);
        }
        let mut best = self.in_block(kl, l, (kl + 1) * self.block - 1);
        if kl < kr - 1 {
            let mid = self.block_argmin[self.summary.query(kl + 1, kr - 1)];
            if self.values[mid] < self.values[best] {
                best = mid;
            }
        }
        let right = self.in_block(kr, kr * self.block, r);
        if self.values[right] < self.values[best] {
            best = right;
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pardict_pram::{Pram, SplitMix64};

    fn naive(values: &[u32], l: usize, r: usize) -> usize {
        let mut best = l;
        for i in l + 1..=r {
            if values[i] < values[best] {
                best = i;
            }
        }
        best
    }

    fn pm1_walk(n: usize, seed: u64) -> Vec<u32> {
        let mut rng = SplitMix64::new(seed);
        let mut v = vec![(n / 2) as u32];
        for _ in 1..n {
            let last = *v.last().unwrap();
            let next = if last == 0 || rng.next_below(2) == 1 {
                last + 1
            } else {
                last - 1
            };
            v.push(next);
        }
        v
    }

    #[test]
    fn matches_naive_on_random_walks() {
        let pram = Pram::seq();
        for (n, seed) in [(10usize, 1u64), (64, 2), (257, 3), (2000, 4)] {
            let vals = pm1_walk(n, seed);
            let rmq = Pm1Rmq::new(&pram, &vals);
            let mut rng = SplitMix64::new(seed + 100);
            for _ in 0..500 {
                let l = rng.next_below(n as u64) as usize;
                let r = l + rng.next_below((n - l) as u64) as usize;
                assert_eq!(rmq.argmin(l, r), naive(&vals, l, r), "[{l},{r}] n={n}");
            }
        }
    }

    #[test]
    fn exhaustive_small() {
        let pram = Pram::seq();
        let vals = pm1_walk(40, 9);
        let rmq = Pm1Rmq::new(&pram, &vals);
        for l in 0..40 {
            for r in l..40 {
                assert_eq!(rmq.argmin(l, r), naive(&vals, l, r));
            }
        }
    }

    #[test]
    fn leftmost_on_ties() {
        let pram = Pram::seq();
        // 1 0 1 0 1 0 ... minima at odd positions.
        let vals: Vec<u32> = (0..50).map(|i| 1 - (i % 2) as u32).collect();
        let rmq = Pm1Rmq::new(&pram, &vals);
        assert_eq!(rmq.argmin(0, 49), 1);
        assert_eq!(rmq.argmin(2, 49), 3);
        assert_eq!(rmq.argmin(1, 1), 1);
    }

    #[test]
    fn linear_work_preprocessing() {
        let mut ratios = Vec::new();
        for n in [1usize << 12, 1 << 15, 1 << 17] {
            let pram = Pram::seq();
            let vals = pm1_walk(n, 5);
            let _ = Pm1Rmq::new(&pram, &vals);
            ratios.push(pram.cost().work as f64 / n as f64);
        }
        assert!(
            ratios[2] <= ratios[0] * 1.5 + 1.0,
            "preprocess work grew superlinearly: {ratios:?}"
        );
    }
}
